#include "viz/dot.hpp"

#include "ir/print.hpp"
#include "support/strings.hpp"

namespace ccref::viz {

using ir::Process;
using ir::Protocol;
using ir::StateId;
using ir::StateKind;
using refine::MsgClass;
using refine::RefinedProtocol;

namespace {

std::string escape(std::string_view s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string peer_of_output(const ir::OutputGuard& g, const Process& proc) {
  switch (g.to.kind) {
    case ir::PeerSel::Kind::Home:
      return "h";
    case ir::PeerSel::Kind::Expr:
      return "r(" + to_string(*g.to.expr, proc) + ")";
    case ir::PeerSel::Kind::AnyInSet:
      return "r(pick " + to_string(*g.to.expr, proc) + ")";
  }
  return "?";
}

std::string peer_of_input(const ir::InputGuard& g, const Process& proc) {
  switch (g.from.kind) {
    case ir::PeerSrc::Kind::Home:
      return "h";
    case ir::PeerSrc::Kind::Any:
      return "r(i)";
    case ir::PeerSrc::Kind::Expr:
      return "r(" + to_string(*g.from.expr, proc) + ")";
  }
  return "?";
}

}  // namespace

std::string rendezvous_dot(const Protocol& protocol, const Process& process) {
  std::string out = strf("digraph %s_%s {\n", protocol.name.c_str(),
                         process.name.c_str());
  out += "  rankdir=LR;\n  node [shape=circle, fontsize=11];\n";
  for (StateId si = 0; si < process.states.size(); ++si) {
    const ir::State& s = process.states[si];
    out += strf("  s%u [label=\"%s\"%s%s];\n", si, escape(s.name).c_str(),
                s.kind == StateKind::Internal ? ", style=dashed" : "",
                si == process.initial ? ", penwidth=2" : "");
  }
  for (StateId si = 0; si < process.states.size(); ++si) {
    const ir::State& s = process.states[si];
    for (const auto& g : s.inputs)
      out += strf("  s%u -> s%u [label=\"%s?%s\"];\n", si, g.next,
                  escape(peer_of_input(g, process)).c_str(),
                  escape(protocol.message(g.msg).name).c_str());
    for (const auto& g : s.outputs)
      out += strf("  s%u -> s%u [label=\"%s!%s\"];\n", si, g.next,
                  escape(peer_of_output(g, process)).c_str(),
                  escape(protocol.message(g.msg).name).c_str());
    for (const auto& g : s.taus)
      out += strf("  s%u -> s%u [label=\"%s\", style=dashed];\n", si, g.next,
                  escape(g.label.empty() ? "tau" : g.label).c_str());
  }
  out += "}\n";
  return out;
}

std::string refined_dot(const RefinedProtocol& refined,
                        const Process& process) {
  const Protocol& protocol = *refined.base;
  std::string out = strf("digraph %s_%s_refined {\n", protocol.name.c_str(),
                         process.name.c_str());
  out += "  rankdir=LR;\n  node [shape=circle, fontsize=11];\n";

  for (StateId si = 0; si < process.states.size(); ++si) {
    const ir::State& s = process.states[si];
    out += strf("  s%u [label=\"%s\"%s%s];\n", si, escape(s.name).c_str(),
                s.kind == StateKind::Internal ? ", style=dashed" : "",
                si == process.initial ? ", penwidth=2" : "");
  }

  auto transient_node = [&](StateId si, std::size_t gi) {
    return strf("t%u_%zu", si, gi);
  };

  for (StateId si = 0; si < process.states.size(); ++si) {
    const ir::State& s = process.states[si];

    for (const auto& g : s.inputs) {
      // Inputs are consumed from the buffer; an ack (or fused reply) goes
      // back unless the message is fused or elide-ack.
      MsgClass cls = refined.cls(g.msg);
      const char* style =
          cls == MsgClass::ElideAck ? ", style=dotted" : "";
      out += strf("  s%u -> s%u [label=\"%s??%s\"%s];\n", si, g.next,
                  escape(peer_of_input(g, process)).c_str(),
                  escape(protocol.message(g.msg).name).c_str(), style);
    }

    for (std::size_t gi = 0; gi < s.outputs.size(); ++gi) {
      const auto& g = s.outputs[gi];
      MsgClass cls = refined.cls(g.msg);
      std::string label = strf("%s!!%s",
                               escape(peer_of_output(g, process)).c_str(),
                               escape(protocol.message(g.msg).name).c_str());
      if (cls == MsgClass::Reply || cls == MsgClass::ElideAck) {
        // Fire-and-forget: no transient state.
        out += strf("  s%u -> s%u [label=\"%s\"%s];\n", si, g.next,
                    label.c_str(),
                    cls == MsgClass::ElideAck ? ", style=dotted" : "");
        continue;
      }
      // Request: route through a dotted transient state with ack/nack edges.
      std::string t = transient_node(si, gi);
      out += strf("  %s [label=\"\", style=dotted, width=0.25];\n", t.c_str());
      out += strf("  s%u -> %s [label=\"%s\"];\n", si, t.c_str(),
                  label.c_str());
      const auto* hf =
          process.role == ir::Role::Home ? refined.home_fusion_at(si, gi)
                                         : nullptr;
      const auto* rf = process.role == ir::Role::Remote
                           ? refined.remote_fusion_at(si)
                           : nullptr;
      if (hf) {
        // The fused reply lands wherever og.next's consuming guard goes.
        StateId dest = g.next;
        for (const auto& ig2 : process.state(g.next).inputs)
          if (ig2.msg == hf->reply) {
            dest = ig2.next;
            break;
          }
        out += strf("  %s -> s%u [label=\"??%s\"];\n", t.c_str(), dest,
                    escape(protocol.message(hf->reply).name).c_str());
      } else if (rf) {
        const auto& w = process.state(rf->wait_state);
        out += strf("  %s -> s%u [label=\"??%s\"];\n", t.c_str(),
                    w.inputs[0].next,
                    escape(protocol.message(rf->reply).name).c_str());
      } else {
        out += strf("  %s -> s%u [label=\"??ack\"];\n", t.c_str(), g.next);
      }
      out += strf("  %s -> s%u [label=\"??nack\", style=dashed];\n",
                  t.c_str(), si);
      if (process.role == ir::Role::Remote)
        out += strf("  %s -> %s [label=\"??*\", style=dotted];\n", t.c_str(),
                    t.c_str());
    }

    for (const auto& g : s.taus)
      out += strf("  s%u -> s%u [label=\"%s\", style=dashed];\n", si, g.next,
                  escape(g.label.empty() ? "tau" : g.label).c_str());
  }
  out += "}\n";
  return out;
}

}  // namespace ccref::viz
