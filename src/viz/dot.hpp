// Graphviz DOT export: regenerates the paper's protocol diagrams.
//
// rendezvous_dot() renders a Process as in Figures 1-3 (solid communication
// states, dashed internal states, edges labelled with guards). refined_dot()
// renders the asynchronous machine as in Figures 4-5: transient states appear
// as dotted circles, fused request/reply edges use the "!!"/"??" notation,
// and elide-ack edges are drawn dotted like the hand design's LR arrows.
#pragma once

#include <string>

#include "ir/process.hpp"
#include "refine/refined.hpp"

namespace ccref::viz {

/// DOT for one process of the rendezvous protocol (Figures 1-3).
[[nodiscard]] std::string rendezvous_dot(const ir::Protocol& protocol,
                                         const ir::Process& process);

/// DOT for the refined asynchronous machine of one process (Figures 4-5).
[[nodiscard]] std::string refined_dot(const refine::RefinedProtocol& refined,
                                      const ir::Process& process);

}  // namespace ccref::viz
