// Recursive-descent parser for the protocol description language.
//
// The grammar (matching ir::print's output):
//
//   file      := 'protocol' IDENT ';' message* home remote
//   message   := 'message' IDENT ('(' type (',' type)* ')')? ';'
//   home      := 'home' IDENT '{' (vardecl | statedecl)* '}'
//   remote    := 'remote' IDENT '{' (vardecl | statedecl)* '}'
//   vardecl   := 'var' IDENT ':' type ('mod' INT)? ('=' INT)? ';'
//   statedecl := ('state'|'internal') IDENT 'initial'? '{' guard* '}'
//   guard     := ('[' expr ']')? (tauguard | commguard)
//   tauguard  := 'tau' IDENT? action? '->' IDENT
//   commguard := peer ('?' | '!') IDENT args? action? '->' IDENT
//   peer      := 'h' | 'r' '(' ('any' IDENT? | 'pick' expr ('as' IDENT)?
//                              | expr) ')'
//   args      := '(' item (',' item)* ')'     // exprs on '!', binders on '?'
//   action    := '{' stmt (';' stmt)* '}'
//   stmt      := 'skip' | IDENT ':=' expr | IDENT ('+='|'-=') '{' expr '}'
//
// Expressions use C-like precedence: || < && < (== != < <= in) < (+ -) <
// unary '!' < primary. `x in s` is set membership; `{}` is the empty set;
// `node(K)` is a node-id literal; `self` is the remote's own id.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "ir/process.hpp"

namespace ccref::dsl {

struct ParseResult {
  std::optional<ir::Protocol> protocol;
  std::vector<std::string> errors;  // "line:col: message"

  [[nodiscard]] bool ok() const {
    return protocol.has_value() && errors.empty();
  }
  [[nodiscard]] std::string error_text() const;
};

[[nodiscard]] ParseResult parse(std::string_view source);

/// Parse a .csp file from disk; IO failures become parse errors.
[[nodiscard]] ParseResult parse_file(const std::string& path);

}  // namespace ccref::dsl
