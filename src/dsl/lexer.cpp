#include "dsl/lexer.hpp"

namespace ccref::dsl {

const char* token_name(Tok kind) {
  switch (kind) {
    case Tok::Ident: return "identifier";
    case Tok::Int: return "integer";
    case Tok::LBrace: return "'{'";
    case Tok::RBrace: return "'}'";
    case Tok::LParen: return "'('";
    case Tok::RParen: return "')'";
    case Tok::LBracket: return "'['";
    case Tok::RBracket: return "']'";
    case Tok::Semi: return "';'";
    case Tok::Colon: return "':'";
    case Tok::Comma: return "','";
    case Tok::Query: return "'?'";
    case Tok::Bang: return "'!'";
    case Tok::Arrow: return "'->'";
    case Tok::Assign: return "':='";
    case Tok::PlusEq: return "'+='";
    case Tok::MinusEq: return "'-='";
    case Tok::Eq: return "'='";
    case Tok::EqEq: return "'=='";
    case Tok::NotEq: return "'!='";
    case Tok::LessEq: return "'<='";
    case Tok::Less: return "'<'";
    case Tok::Plus: return "'+'";
    case Tok::Minus: return "'-'";
    case Tok::AndAnd: return "'&&'";
    case Tok::OrOr: return "'||'";
    case Tok::End: return "end of input";
  }
  return "?";
}

LexResult lex(std::string_view src) {
  LexResult out;
  int line = 1, col = 1;
  std::size_t i = 0;

  auto push = [&](Tok kind, std::size_t start, std::size_t len) {
    out.tokens.push_back(
        {kind, src.substr(start, len), line,
         col - static_cast<int>(len)});
  };
  auto advance = [&](std::size_t n) {
    for (std::size_t k = 0; k < n; ++k) {
      if (src[i + k] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
    i += n;
  };

  auto is_ident_start = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
  };
  auto is_ident_char = [&](char c) {
    return is_ident_start(c) || (c >= '0' && c <= '9');
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') advance(1);
      continue;
    }
    if (is_ident_start(c)) {
      std::size_t start = i;
      while (i < src.size() && is_ident_char(src[i])) advance(1);
      push(Tok::Ident, start, i - start);
      continue;
    }
    if (c >= '0' && c <= '9') {
      std::size_t start = i;
      while (i < src.size() && src[i] >= '0' && src[i] <= '9') advance(1);
      push(Tok::Int, start, i - start);
      continue;
    }

    auto two = [&](char a, char b, Tok kind) {
      if (c == a && i + 1 < src.size() && src[i + 1] == b) {
        std::size_t start = i;
        advance(2);
        push(kind, start, 2);
        return true;
      }
      return false;
    };
    if (two('-', '>', Tok::Arrow)) continue;
    if (two(':', '=', Tok::Assign)) continue;
    if (two('+', '=', Tok::PlusEq)) continue;
    if (two('-', '=', Tok::MinusEq)) continue;
    if (two('=', '=', Tok::EqEq)) continue;
    if (two('!', '=', Tok::NotEq)) continue;
    if (two('<', '=', Tok::LessEq)) continue;
    if (two('&', '&', Tok::AndAnd)) continue;
    if (two('|', '|', Tok::OrOr)) continue;

    Tok kind;
    switch (c) {
      case '{': kind = Tok::LBrace; break;
      case '}': kind = Tok::RBrace; break;
      case '(': kind = Tok::LParen; break;
      case ')': kind = Tok::RParen; break;
      case '[': kind = Tok::LBracket; break;
      case ']': kind = Tok::RBracket; break;
      case ';': kind = Tok::Semi; break;
      case ':': kind = Tok::Colon; break;
      case ',': kind = Tok::Comma; break;
      case '?': kind = Tok::Query; break;
      case '!': kind = Tok::Bang; break;
      case '<': kind = Tok::Less; break;
      case '+': kind = Tok::Plus; break;
      case '=': kind = Tok::Eq; break;
      case '-': kind = Tok::Minus; break;
      default: {
        out.error = std::string("unexpected character '") + c + "'";
        out.error_line = line;
        out.error_col = col;
        out.tokens.push_back({Tok::End, {}, line, col});
        return out;
      }
    }
    std::size_t start = i;
    advance(1);
    push(kind, start, 1);
  }
  out.tokens.push_back({Tok::End, {}, line, col});
  return out;
}

}  // namespace ccref::dsl
