// Lexer for the CSP-like protocol description language.
//
// The surface syntax matches ir::print's output, so protocols round-trip
// through text. Tokens carry source positions for diagnostics.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ccref::dsl {

enum class Tok : std::uint8_t {
  Ident,     // states, variables, messages, keywords are contextual
  Int,       // decimal literal
  LBrace,    // {
  RBrace,    // }
  LParen,    // (
  RParen,    // )
  LBracket,  // [
  RBracket,  // ]
  Semi,      // ;
  Colon,     // :
  Comma,     // ,
  Query,     // ?
  Bang,      // !
  Arrow,     // ->
  Assign,    // :=
  PlusEq,    // +=
  MinusEq,   // -=
  Eq,        // =  (variable initializers)
  EqEq,      // ==
  NotEq,     // !=
  LessEq,    // <=
  Less,      // <
  Plus,      // +
  Minus,     // -
  AndAnd,    // &&
  OrOr,      // ||
  End,       // end of input
};

struct Token {
  Tok kind = Tok::End;
  std::string_view text;  // into the source buffer
  int line = 1;
  int col = 1;

  [[nodiscard]] bool is(Tok k) const { return kind == k; }
  [[nodiscard]] bool is_ident(std::string_view word) const {
    return kind == Tok::Ident && text == word;
  }
};

struct LexResult {
  std::vector<Token> tokens;  // always ends with Tok::End
  std::string error;          // non-empty on lexical errors
  int error_line = 0;
  int error_col = 0;
};

/// Tokenize `source`. `//` comments run to end of line.
[[nodiscard]] LexResult lex(std::string_view source);

[[nodiscard]] const char* token_name(Tok kind);

}  // namespace ccref::dsl
