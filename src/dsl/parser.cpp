#include "dsl/parser.hpp"

#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "dsl/lexer.hpp"
#include "ir/builder.hpp"
#include "support/strings.hpp"

namespace ccref::dsl {

using ir::ExprP;
using ir::StmtP;
using ir::Type;
using ir::VarId;
namespace ex = ir::ex;
namespace st = ir::st;

std::string ParseResult::error_text() const {
  return join(errors, "\n");
}

namespace {

const std::set<std::string_view> kReserved = {
    "protocol", "message", "home",  "remote", "var",  "state",
    "internal", "initial", "tau",   "skip",   "true", "false",
    "self",     "empty",   "size",  "node",   "none", "any",  "pick",
    "as",       "mod",     "in",    "h",      "r",    "bool",
    "int",      "nodeset", "topology", "bus", "star", "bcast"};

struct ParseAbort {};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens, std::vector<std::string>& errors)
      : toks_(std::move(tokens)), errors_(errors) {}

  ir::Protocol run() {
    expect_word("protocol");
    std::string name = ident("protocol name");
    expect(Tok::Semi);
    builder_.emplace(name);
    if (at_word("topology")) {
      advance();
      if (eat_word("bus")) {
        bus_ = true;
        builder_->topology(ir::Topology::Bus);
      } else if (!eat_word("star")) {
        fail(peek(), "expected 'bus' or 'star' after 'topology'");
      }
      expect(Tok::Semi);
    }
    while (at_word("message")) parse_message();
    expect_word("home");
    parse_process(builder_->home(), /*is_home=*/true);
    expect_word("remote");
    parse_process(builder_->remote(), /*is_home=*/false);
    expect(Tok::End);
    return builder_->build();
  }

 private:
  // ---- token plumbing ----
  const Token& peek(int ahead = 0) const {
    std::size_t at = pos_ + ahead;
    return at < toks_.size() ? toks_[at] : toks_.back();
  }
  const Token& advance() {
    const Token& t = peek();
    if (pos_ + 1 < toks_.size()) ++pos_;
    return t;
  }
  [[noreturn]] void fail(const Token& at, std::string msg) {
    errors_.push_back(strf("%d:%d: %s", at.line, at.col, msg.c_str()));
    throw ParseAbort{};
  }
  const Token& expect(Tok kind) {
    if (!peek().is(kind))
      fail(peek(), strf("expected %s, found %s%s%s", token_name(kind),
                        token_name(peek().kind),
                        peek().text.empty() ? "" : " '",
                        peek().text.empty()
                            ? ""
                            : (std::string(peek().text) + "'").c_str()));
    return advance();
  }
  void expect_word(std::string_view word) {
    if (!peek().is_ident(word))
      fail(peek(), strf("expected '%s'", std::string(word).c_str()));
    advance();
  }
  bool at_word(std::string_view word) const { return peek().is_ident(word); }
  bool eat_word(std::string_view word) {
    if (!at_word(word)) return false;
    advance();
    return true;
  }
  std::string ident(const char* what) {
    if (!peek().is(Tok::Ident))
      fail(peek(), strf("expected %s", what));
    if (kReserved.contains(peek().text))
      fail(peek(), strf("'%s' is a reserved word",
                        std::string(peek().text).c_str()));
    return std::string(advance().text);
  }
  std::int64_t integer() {
    const Token& t = expect(Tok::Int);
    return std::strtoll(std::string(t.text).c_str(), nullptr, 10);
  }

  // ---- declarations ----
  void parse_message() {
    expect_word("message");
    std::string name = ident("message name");
    std::vector<Type> payload;
    if (peek().is(Tok::LParen)) {
      advance();
      payload.push_back(parse_type());
      while (peek().is(Tok::Comma)) {
        advance();
        payload.push_back(parse_type());
      }
      expect(Tok::RParen);
    }
    if (messages_.contains(name))
      fail(peek(), strf("duplicate message '%s'", name.c_str()));
    messages_[name] = builder_->msg(name, std::move(payload));
    expect(Tok::Semi);
  }

  Type parse_type() {
    if (eat_word("bool")) return Type::Bool;
    if (eat_word("int")) return Type::Int;
    if (eat_word("node")) return Type::Node;
    if (eat_word("nodeset")) return Type::NodeSet;
    fail(peek(), "expected a type (bool, int, node, nodeset)");
  }

  /// Scan ahead (without consuming) for state names declared in the process
  /// block starting at the current '{', so guards can reference states
  /// declared later in the file.
  void prescan_states() {
    states_.clear();
    int depth = 0;
    for (std::size_t at = pos_;; ++at) {
      const Token& t = toks_[at];
      if (t.is(Tok::End)) break;
      if (t.is(Tok::LBrace)) ++depth;
      if (t.is(Tok::RBrace)) {
        if (--depth == 0) break;
      }
      if (depth == 1 && (t.is_ident("state") || t.is_ident("internal")) &&
          toks_[at + 1].is(Tok::Ident))
        states_.insert(std::string(toks_[at + 1].text));
    }
  }

  void parse_process(ir::ProcessBuilder& pb, bool is_home) {
    proc_ = &pb;
    is_home_ = is_home;
    vars_.clear();
    // Accept any process name (conventionally h / r).
    if (peek().is(Tok::Ident)) advance();
    if (!peek().is(Tok::LBrace)) fail(peek(), "expected '{'");
    prescan_states();
    expect(Tok::LBrace);
    while (!peek().is(Tok::RBrace)) {
      if (at_word("var")) {
        parse_var();
      } else if (at_word("state") || at_word("internal")) {
        parse_state();
      } else {
        fail(peek(), "expected 'var', 'state' or 'internal'");
      }
    }
    expect(Tok::RBrace);
  }

  void parse_var() {
    expect_word("var");
    std::string name = ident("variable name");
    expect(Tok::Colon);
    Type type = parse_type();
    std::uint32_t bound = 2;
    // Node variables start out naming no remote; any other default would pin
    // a concrete node id and break symmetry (see kNoNode in ir/types.hpp).
    ir::Value init = type == Type::Node ? ir::kNoNode : 0;
    if (eat_word("mod")) bound = static_cast<std::uint32_t>(integer());
    if (peek().is(Tok::Eq)) {
      advance();
      init = static_cast<ir::Value>(integer());
    }
    expect(Tok::Semi);
    if (vars_.contains(name))
      fail(peek(), strf("duplicate variable '%s'", name.c_str()));
    vars_[name] = proc_->var(name, type, init, bound);
  }

  void parse_state() {
    bool internal = at_word("internal");
    advance();
    std::string name = ident("state name");
    auto& sb = internal ? proc_->internal(name) : proc_->comm(name);
    if (eat_word("initial")) sb.initial();
    expect(Tok::LBrace);
    while (!peek().is(Tok::RBrace)) parse_guard(name);
    expect(Tok::RBrace);
  }

  // ---- guards ----
  void parse_guard(const std::string& state) {
    ExprP cond;
    if (peek().is(Tok::LBracket)) {
      advance();
      cond = parse_expr();
      expect(Tok::RBracket);
    }
    if (at_word("tau")) {
      advance();
      std::string label;
      if (peek().is(Tok::Ident) && !kReserved.contains(peek().text) &&
          !peek(1).is(Tok::Assign))
        label = std::string(advance().text);
      auto& tb = proc_->tau(state, label);
      if (cond) tb.when(cond);
      if (peek().is(Tok::LBrace)) tb.act(parse_action());
      expect(Tok::Arrow);
      tb.go(resolve_state());
      return;
    }

    // Peer prefix: 'h', 'r(...)' or 'bcast'.
    enum class Peer { Home, Any, Pick, Expr, Bcast } peer = Peer::Home;
    ExprP peer_expr;
    VarId bind_peer = ir::kNoVar;
    if (eat_word("h")) {
      peer = Peer::Home;
      if (is_home_) fail(peek(), "the home cannot address itself");
    } else if (at_word("bcast")) {
      if (is_home_)
        fail(peek(),
             "the home cannot use 'bcast'; it observes broadcasts through "
             "'r(any v)?' and replies with 'r(e)!'");
      if (!bus_)
        fail(peek(),
             "'bcast' requires 'topology bus;' after the protocol "
             "declaration (this protocol is star)");
      advance();
      peer = Peer::Bcast;
      // Optional requester binder: bcast(v)?M — v receives the sender id.
      if (peek().is(Tok::LParen)) {
        advance();
        bind_peer = lookup_var(ident("binder variable"));
        expect(Tok::RParen);
      }
    } else if (eat_word("r")) {
      if (!is_home_)
        fail(peek(), "remotes communicate only with the home ('h')");
      expect(Tok::LParen);
      if (eat_word("any")) {
        peer = Peer::Any;
        if (peek().is(Tok::Ident) && !kReserved.contains(peek().text))
          bind_peer = lookup_var(std::string(advance().text));
      } else if (eat_word("pick")) {
        peer = Peer::Pick;
        peer_expr = parse_expr();
        if (eat_word("as"))
          bind_peer = lookup_var(ident("binder variable"));
      } else {
        peer = Peer::Expr;
        peer_expr = parse_expr();
      }
      expect(Tok::RParen);
    } else {
      fail(peek(), "expected a guard ('h', 'r(...)', 'tau' or '[cond]')");
    }

    bool is_input = peek().is(Tok::Query);
    if (!is_input && !peek().is(Tok::Bang))
      fail(peek(), "expected '?' or '!' after the peer");
    advance();
    std::string msg_name = ident("message name");
    auto mit = messages_.find(msg_name);
    if (mit == messages_.end())
      fail(peek(), strf("unknown message '%s'", msg_name.c_str()));

    if (is_input) {
      auto& ib = proc_->input(state, mit->second);
      if (cond) ib.when(cond);
      switch (peer) {
        case Peer::Home:
          ib.from_home();
          break;
        case Peer::Any:
          ib.from_any(bind_peer);
          break;
        case Peer::Expr:
          ib.from(peer_expr);
          break;
        case Peer::Bcast:
          ib.from_bcast(bind_peer);
          break;
        case Peer::Pick:
          fail(peek(), "'pick' is only valid on output guards");
      }
      if (peek().is(Tok::LParen)) {
        advance();
        std::vector<VarId> binds;
        for (;;) {
          if (peek().is_ident("_")) {
            advance();
            binds.push_back(ir::kNoVar);
          } else {
            binds.push_back(lookup_var(ident("binder variable")));
          }
          if (!peek().is(Tok::Comma)) break;
          advance();
        }
        expect(Tok::RParen);
        ib.bind(std::move(binds));
      }
      if (peek().is(Tok::LBrace)) ib.act(parse_action());
      expect(Tok::Arrow);
      ib.go(resolve_state());
    } else {
      auto& ob = proc_->output(state, mit->second);
      if (cond) ob.when(cond);
      switch (peer) {
        case Peer::Home:
          ob.to_home();
          break;
        case Peer::Expr:
          ob.to(peer_expr);
          break;
        case Peer::Pick:
          ob.to_any_in(peer_expr, bind_peer);
          break;
        case Peer::Bcast:
          if (bind_peer != ir::kNoVar)
            fail(peek(),
                 "a requester binder is only valid on 'bcast(v)?' snoop "
                 "inputs, not broadcast outputs");
          ob.bcast();
          break;
        case Peer::Any:
          fail(peek(), "'any' is only valid on input guards");
      }
      if (peek().is(Tok::LParen)) {
        advance();
        std::vector<ExprP> payload;
        payload.push_back(parse_expr());
        while (peek().is(Tok::Comma)) {
          advance();
          payload.push_back(parse_expr());
        }
        expect(Tok::RParen);
        ob.pay(std::move(payload));
      }
      if (peek().is(Tok::LBrace)) ob.act(parse_action());
      expect(Tok::Arrow);
      ob.go(resolve_state());
    }
  }

  std::string resolve_state() {
    std::string name = ident("state name");
    if (!states_.contains(name))
      fail(peek(), strf("unknown state '%s'", name.c_str()));
    return name;
  }

  VarId lookup_var(const std::string& name) {
    auto it = vars_.find(name);
    if (it == vars_.end())
      fail(peek(), strf("undeclared variable '%s'", name.c_str()));
    return it->second;
  }

  // ---- statements ----
  StmtP parse_action() {
    expect(Tok::LBrace);
    std::vector<StmtP> body;
    body.push_back(parse_stmt());
    while (peek().is(Tok::Semi)) {
      advance();
      if (peek().is(Tok::RBrace)) break;  // trailing ';'
      body.push_back(parse_stmt());
    }
    expect(Tok::RBrace);
    return body.size() == 1 ? body[0] : st::seq(std::move(body));
  }

  StmtP parse_stmt() {
    if (eat_word("skip")) return st::nop();
    VarId var = lookup_var(ident("variable"));
    if (peek().is(Tok::Assign)) {
      advance();
      return st::assign(var, parse_expr());
    }
    if (peek().is(Tok::PlusEq) || peek().is(Tok::MinusEq)) {
      bool add = peek().is(Tok::PlusEq);
      advance();
      expect(Tok::LBrace);
      ExprP element = parse_expr();
      expect(Tok::RBrace);
      return add ? st::set_add(var, element) : st::set_remove(var, element);
    }
    fail(peek(), "expected ':=', '+=' or '-='");
  }

  // ---- expressions ----
  ExprP parse_expr() { return parse_or(); }

  ExprP parse_or() {
    ExprP lhs = parse_and();
    while (peek().is(Tok::OrOr)) {
      advance();
      lhs = ex::lor(lhs, parse_and());
    }
    return lhs;
  }

  ExprP parse_and() {
    ExprP lhs = parse_cmp();
    while (peek().is(Tok::AndAnd)) {
      advance();
      lhs = ex::land(lhs, parse_cmp());
    }
    return lhs;
  }

  ExprP parse_cmp() {
    ExprP lhs = parse_sum();
    switch (peek().kind) {
      case Tok::EqEq:
        advance();
        return ex::eq(lhs, parse_sum());
      case Tok::NotEq:
        advance();
        return ex::ne(lhs, parse_sum());
      case Tok::Less:
        advance();
        return ex::lt(lhs, parse_sum());
      case Tok::LessEq:
        advance();
        return ex::le(lhs, parse_sum());
      default:
        if (at_word("in")) {
          advance();
          return ex::set_contains(parse_sum(), lhs);
        }
        return lhs;
    }
  }

  ExprP parse_sum() {
    ExprP lhs = parse_unary();
    for (;;) {
      if (peek().is(Tok::Plus)) {
        advance();
        lhs = ex::add(lhs, parse_unary());
      } else if (peek().is(Tok::Minus)) {
        advance();
        lhs = ex::sub(lhs, parse_unary());
      } else {
        return lhs;
      }
    }
  }

  ExprP parse_unary() {
    if (peek().is(Tok::Bang)) {
      advance();
      return ex::negate(parse_unary());
    }
    return parse_primary();
  }

  ExprP parse_primary() {
    if (peek().is(Tok::Int)) return ex::lit(integer());
    if (eat_word("true")) return ex::boolean(true);
    if (eat_word("false")) return ex::boolean(false);
    if (eat_word("self")) {
      if (is_home_) fail(peek(), "'self' is only meaningful in the remote");
      return ex::self();
    }
    if (eat_word("node")) {
      expect(Tok::LParen);
      ExprP e = ex::node(integer());
      expect(Tok::RParen);
      return e;
    }
    if (eat_word("none")) return ex::no_node();
    if (eat_word("empty")) {
      expect(Tok::LParen);
      ExprP e = ex::set_empty(parse_expr());
      expect(Tok::RParen);
      return e;
    }
    if (eat_word("size")) {
      expect(Tok::LParen);
      ExprP e = ex::set_size(parse_expr());
      expect(Tok::RParen);
      return e;
    }
    if (peek().is(Tok::LBrace)) {
      advance();
      expect(Tok::RBrace);
      return ex::empty_set();
    }
    if (peek().is(Tok::LParen)) {
      advance();
      ExprP e = parse_expr();
      expect(Tok::RParen);
      return e;
    }
    if (peek().is(Tok::Ident)) return ex::var(lookup_var(ident("variable")));
    fail(peek(), "expected an expression");
  }

  std::vector<Token> toks_;
  std::size_t pos_ = 0;
  std::vector<std::string>& errors_;
  std::optional<ir::ProtocolBuilder> builder_;
  ir::ProcessBuilder* proc_ = nullptr;
  bool is_home_ = false;
  bool bus_ = false;
  std::map<std::string, ir::MsgId, std::less<>> messages_;
  std::map<std::string, VarId, std::less<>> vars_;
  std::set<std::string, std::less<>> states_;
};

}  // namespace

ParseResult parse(std::string_view source) {
  ParseResult result;
  auto lexed = lex(source);
  if (!lexed.error.empty()) {
    result.errors.push_back(strf("%d:%d: %s", lexed.error_line,
                                 lexed.error_col, lexed.error.c_str()));
    return result;
  }
  Parser parser(std::move(lexed.tokens), result.errors);
  try {
    result.protocol = parser.run();
  } catch (const ParseAbort&) {
    // error already recorded
  }
  return result;
}

ParseResult parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    ParseResult result;
    result.errors.push_back("0:0: cannot open file: " + path);
    return result;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return parse(ss.str());
}

}  // namespace ccref::dsl
