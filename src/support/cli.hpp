// Minimal command-line flag parsing for bench/example binaries.
//
// Supports `--name=value`, `--name value`, and boolean `--flag`. Unknown
// flags are an error so typos in experiment sweeps fail loudly, and
// malformed numeric values exit 2 with a message naming the flag rather
// than aborting.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ccref {

/// Strict whole-string unsigned parse with a range check. Rejects signs,
/// whitespace, trailing junk, and out-of-range values; the flag helpers
/// below build their exit-2 diagnostics on top of this.
[[nodiscard]] std::optional<std::uint64_t> parse_uint(std::string_view text,
                                                      std::uint64_t min,
                                                      std::uint64_t max);

/// Byte-size parse on top of parse_uint: a whole-string unsigned value with
/// an optional binary suffix K/M/G/T (either case), e.g. "512M" = 512 MiB,
/// "64k" = 64 KiB. Rejects bare suffixes, trailing junk ("5GB"), values
/// whose multiplication would overflow, and results outside [min, max].
[[nodiscard]] std::optional<std::uint64_t> parse_size(std::string_view text,
                                                      std::uint64_t min,
                                                      std::uint64_t max);

class Cli {
 public:
  Cli(int argc, char** argv);

  /// Declare flags with defaults; returns parsed value. Declaration order
  /// doubles as --help order. Malformed or out-of-range values print a
  /// message naming the flag to stderr and exit 2.
  [[nodiscard]] std::int64_t int_flag(std::string_view name,
                                      std::int64_t def,
                                      std::string_view help = "");
  [[nodiscard]] std::uint64_t uint_flag(std::string_view name,
                                        std::uint64_t def, std::uint64_t min,
                                        std::uint64_t max,
                                        std::string_view help = "");
  [[nodiscard]] double double_flag(std::string_view name, double def,
                                   std::string_view help = "");
  [[nodiscard]] bool bool_flag(std::string_view name, bool def,
                               std::string_view help = "");
  [[nodiscard]] std::string str_flag(std::string_view name,
                                     std::string_view def,
                                     std::string_view help = "");
  /// Byte-size flag accepting K/M/G/T suffixes ("--mem 512M"); `def` is the
  /// default spelled the same way (e.g. "64M") so --help shows the idiom.
  [[nodiscard]] std::uint64_t size_flag(std::string_view name,
                                        std::string_view def,
                                        std::uint64_t min, std::uint64_t max,
                                        std::string_view help = "");

  /// Call after all flags are declared: rejects unknown flags, handles
  /// --help (prints usage and exits 0).
  void finish();

  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

 private:
  struct Decl {
    std::string name;
    std::string def;
    std::string help;
  };
  std::string program_;
  std::map<std::string, std::string, std::less<>> values_;
  std::vector<std::string> positional_;
  std::vector<Decl> decls_;
  bool help_requested_ = false;
};

}  // namespace ccref
