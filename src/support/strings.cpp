#include "support/strings.hpp"

#include <cstdarg>
#include <cstdio>

#include "support/contracts.hpp"

namespace ccref {

std::string strf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  CCREF_ASSERT(n >= 0);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

std::string human_bytes(std::size_t n) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(n);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  return u == 0 ? strf("%zu B", n) : strf("%.1f %s", v, units[u]);
}

std::string join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

}  // namespace ccref
