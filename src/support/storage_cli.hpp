// Shared storage-tier flag block for the bench/example binaries.
//
// Every driver that runs the checker takes the same four knobs:
//
//   --mem 64M           RAM budget for state storage (K/M/G/T suffixes)
//   --hash-compact      store 64-bit fingerprints instead of state vectors
//   --spill DIR         mmap-backed overflow for pools and dictionaries
//   --spill-cap SIZE    cap on spill bytes (0 = whatever the disk holds)
//   --spill-watermark   RAM use past which fresh chunks spill
//                       (0 = half of --mem, leaving the tables headroom)
//   --external DIR      disk-resident visited set: partitioned fingerprint
//                       runs + delayed duplicate detection (external_set.hpp)
//   --external-watermark N  pending fingerprints per partition before a
//                       merge (0 = sized from --mem)
//
// Declaring them here keeps the spelling and the --help text identical
// across binaries, and owns the SpillArena so callers just thread
// `flags.spill` into CheckOptions. A --spill or --external directory that
// cannot be created is an option error (exit 2), not a silent RAM-only run.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>

#include "support/cli.hpp"
#include "support/run_file.hpp"
#include "support/spill.hpp"
#include "verify/external_set.hpp"

namespace ccref {

struct StorageFlags {
  std::size_t memory_limit = 0;
  bool hash_compact = false;
  std::unique_ptr<SpillArena> arena;  // null when --spill was not given
  SpillPolicy spill;                  // default-null policy without an arena
  verify::ExternalPolicy external;    // empty dir when --external not given
};

[[nodiscard]] inline StorageFlags storage_flags(Cli& cli,
                                                std::string_view mem_def) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  StorageFlags f;
  f.memory_limit = static_cast<std::size_t>(
      cli.size_flag("mem", mem_def, 1u << 20, kMax,
                    "state-memory limit, e.g. 64M or 2G"));
  f.hash_compact = cli.bool_flag(
      "hash-compact", false,
      "store 64-bit fingerprints per state (reports omission probability)");
  std::string dir = cli.str_flag(
      "spill", "", "directory for mmap-backed pool overflow (default: none)");
  auto cap = static_cast<std::size_t>(cli.size_flag(
      "spill-cap", "0", 0, kMax, "max spill bytes (0: unlimited)"));
  auto watermark = static_cast<std::size_t>(cli.size_flag(
      "spill-watermark", "0", 0, kMax,
      "RAM use past which chunks spill (0: half of --mem)"));
  if (!dir.empty()) {
    f.arena = std::make_unique<SpillArena>(dir, cap == 0 ? kMax : cap);
    if (!f.arena->ok()) {
      std::fprintf(stderr, "--spill: cannot create directory '%s'\n",
                   dir.c_str());
      std::exit(2);
    }
    f.spill = {f.arena.get(),
               watermark == 0 ? f.memory_limit / 2 : watermark};
  }
  std::string ext_dir = cli.str_flag(
      "external", "",
      "directory for the disk-resident visited set (delayed duplicate "
      "detection; default: none)");
  auto ext_watermark = static_cast<std::size_t>(cli.size_flag(
      "external-watermark", "0", 0, kMax,
      "pending fingerprints per partition before a merge (0: from --mem)"));
  if (!ext_dir.empty()) {
    if (!ensure_run_dir(ext_dir)) {
      std::fprintf(stderr, "--external: cannot create directory '%s'\n",
                   ext_dir.c_str());
      std::exit(2);
    }
    f.external.dir = std::move(ext_dir);
    f.external.watermark = ext_watermark;
  }
  return f;
}

}  // namespace ccref
