// Lock-free insert-if-absent storage for variable-length byte strings.
//
// This is the hot-path core of the parallel visited set (Laarman-style
// shared hash table, adapted to variable-length records):
//
//   * ChunkedBytePool — an append-only arena of geometrically growing
//     chunks. Chunk addresses never move, so a 32-bit byte offset is a
//     stable record id that any thread can dereference without
//     coordination. Allocation is a CAS bump on one counter; chunks are
//     charged against the memory budget in full when first touched, so
//     budget.used() equals bytes actually held at every instant (the
//     "budget == memory_used" invariant the exhaustion tests pin).
//
//   * AtomicByteTable — open-addressing table whose slots are single
//     atomic u64 words: [pending:1][tag:31][offset+1:32]. Insertion
//     claims an empty slot by CAS(0 -> pending|tag), appends the record
//     to the pool, then publishes with a release store of the final
//     word; concurrent probers that hit a pending word with a matching
//     tag spin (bounded: the owner never blocks while pending) and
//     re-examine. If the pool refuses the record (budget exhausted) the
//     owner rolls the slot back to 0, so a claim never leaks a slot.
//     Readers probe with acquire loads only — the release/acquire pair
//     on the slot word is what makes the record bytes visible (see
//     DESIGN.md §4.6 for the full ordering argument).
//
//   * Resize uses a seqlock-style epoch: writers enter a striped,
//     cache-line-padded reader count before touching the slot array;
//     the single resizer raises `resizing_`, waits for every stripe to
//     drain, migrates published words into a 2x array, swaps the table
//     pointer, and drops the flag. Writers that arrive mid-resize back
//     out of their stripe and wait. Records themselves never move.
//
// Everything is intentionally header-only and templated on the budget
// type so the support layer does not depend on verify/.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <optional>
#include <span>

#include "support/contracts.hpp"
#include "support/spill.hpp"
#include "support/thread_pool.hpp"

namespace ccref {

/// Result of an insert-if-absent on any of the visited-set structures.
/// Shared across the sequential and concurrent sets so call sites can
/// compare outcomes across engines without translation.
enum class InsertOutcome : std::uint8_t {
  Inserted,        ///< fresh state, now stored
  AlreadyPresent,  ///< equal bytes were already stored
  Exhausted,       ///< memory budget refused the insertion
  Deferred,        ///< external tier: queued for delayed duplicate detection
};

/// Append-only arena: chunk k holds (chunk0 << k) bytes, so 32 chunks
/// cover the entire 32-bit offset space with at most 2x slack. Records
/// never straddle chunks (alloc skips to the next chunk instead — the
/// skipped tail is charged but never handed out; bytes_waste() reports
/// it, together with the unused tail of the final chunk at exhaustion).
///
/// With a SpillPolicy carrying an arena, chunks past the RAM high-water
/// mark — and any chunk the RAM budget refuses — come from mmap'd spill
/// files instead of the heap; those bytes are tracked in spill_bytes(),
/// not in the RAM budget, so exhaustion becomes a disk-space event.
template <class Budget>
class ChunkedBytePool {
 public:
  static constexpr std::uint32_t kNpos = 0xffffffffu;

  ChunkedBytePool(Budget& budget, std::size_t chunk0_bytes,
                  SpillPolicy spill = {})
      : budget_(&budget), spill_(spill) {
    chunk0_bits_ = 8;  // 256 B floor keeps tiny-budget tables viable
    while ((std::size_t{1} << chunk0_bits_) < chunk0_bytes) ++chunk0_bits_;
  }

  ChunkedBytePool(const ChunkedBytePool&) = delete;
  ChunkedBytePool& operator=(const ChunkedBytePool&) = delete;

  ~ChunkedBytePool() {
    const std::uint32_t spilled = spilled_.load(std::memory_order_relaxed);
    for (std::size_t k = 0; k < kMaxChunks; ++k) {
      std::byte* p = chunks_[k].load(std::memory_order_relaxed);
      if (p == nullptr) continue;
      if ((spilled >> k) & 1)
        spill_.arena->unmap_chunk(p, std::size_t{1} << (chunk0_bits_ + k));
      else
        delete[] p;
    }
  }

  /// Reserve `len` contiguous bytes; kNpos when the budget refuses the
  /// backing chunk or the 32-bit offset space is spent. Thread-safe.
  [[nodiscard]] std::uint32_t alloc(std::size_t len) {
    CCREF_REQUIRE(len > 0);
    std::uint64_t cur = top_.load(std::memory_order_relaxed);
    for (;;) {
      std::uint64_t start = cur;
      std::size_t k = chunk_index(start);
      while (start + len > chunk_end(k)) {
        start = chunk_end(k);  // == base of chunk k+1
        if (++k >= kMaxChunks) return kNpos;
      }
      const std::uint64_t end = start + len;
      if (end >= kNpos) return kNpos;  // offsets must stay below kNpos
      if (!ensure_chunk(k)) return kNpos;
      if (top_.compare_exchange_weak(cur, end, std::memory_order_relaxed)) {
        allocated_.fetch_add(len, std::memory_order_relaxed);
        return static_cast<std::uint32_t>(start);
      }
      // CAS failure reloaded `cur`; recompute placement.
    }
  }

  /// Un-publish the most recent alloc by restoring the bump pointer to the
  /// offset that alloc returned. Single-threaded callers only (the
  /// sequential StateSet's insert-rollback path): with concurrent
  /// allocators the offset may no longer be the top.
  void rewind(std::uint32_t offset, std::size_t len) {
    CCREF_ASSERT(top_.load(std::memory_order_relaxed) == offset + len);
    top_.store(offset, std::memory_order_relaxed);
    allocated_.fetch_sub(len, std::memory_order_relaxed);
  }

  [[nodiscard]] std::byte* data(std::uint32_t offset) {
    const std::size_t k = chunk_index(offset);
    return chunks_[k].load(std::memory_order_acquire) + (offset - base(k));
  }
  [[nodiscard]] const std::byte* data(std::uint32_t offset) const {
    const std::size_t k = chunk_index(offset);
    return chunks_[k].load(std::memory_order_acquire) + (offset - base(k));
  }

  /// Bytes of RAM chunk memory charged against the budget so far
  /// (spilled chunks are accounted in spill_bytes(), not here).
  [[nodiscard]] std::size_t charged() const {
    return charged_.load(std::memory_order_relaxed);
  }

  /// Bytes of chunk memory held in mmap-backed spill files.
  [[nodiscard]] std::size_t spill_bytes() const {
    return spill_charged_.load(std::memory_order_relaxed);
  }

  /// Bytes actually handed out to callers (excludes skipped tails).
  [[nodiscard]] std::size_t bytes_allocated() const {
    return allocated_.load(std::memory_order_relaxed);
  }

  /// Chunk bytes held (RAM + spill) but never handed out: skipped tails at
  /// chunk seams plus the unused tail of the final chunk — the honest gap
  /// between what the budget charges and what records occupy. Reported,
  /// not released: the memory really is held, and with concurrent
  /// allocators mid-CAS the tail cannot be safely reconciled away.
  [[nodiscard]] std::size_t bytes_waste() const {
    const std::size_t held = charged_.load(std::memory_order_relaxed) +
                             spill_charged_.load(std::memory_order_relaxed);
    const std::size_t out = allocated_.load(std::memory_order_relaxed);
    return held > out ? held - out : 0;
  }

 private:
  static constexpr std::size_t kMaxChunks = 32;

  // Offsets [base(k), base(k) + (chunk0 << k)) live in chunk k, where
  // base(k) = (2^k - 1) * chunk0. Inverse: k = floor(log2(o/chunk0 + 1)).
  [[nodiscard]] std::size_t chunk_index(std::uint64_t offset) const {
    return static_cast<std::size_t>(
        std::bit_width((offset >> chunk0_bits_) + 1) - 1);
  }
  [[nodiscard]] std::uint64_t base(std::size_t k) const {
    return ((std::uint64_t{1} << k) - 1) << chunk0_bits_;
  }
  [[nodiscard]] std::uint64_t chunk_end(std::size_t k) const {
    return ((std::uint64_t{1} << (k + 1)) - 1) << chunk0_bits_;
  }

  [[nodiscard]] bool ensure_chunk(std::size_t k) {
    if (chunks_[k].load(std::memory_order_acquire) != nullptr) return true;
    const std::size_t bytes = std::size_t{1} << (chunk0_bits_ + k);
    // Tier choice: RAM below the watermark, spill above it or when RAM is
    // refused, RAM again if spill is refused (disk full) but headroom
    // remains — only when all tiers refuse is the pool exhausted.
    std::byte* fresh = nullptr;
    bool spilled = false;
    const bool past_watermark =
        spill_.arena != nullptr &&
        budget_->used() + bytes > spill_.ram_watermark;
    if (!past_watermark && budget_->try_reserve(bytes))
      fresh = new std::byte[bytes];
    if (fresh == nullptr && spill_.arena != nullptr) {
      fresh = spill_.arena->map_chunk(bytes);
      spilled = fresh != nullptr;
    }
    if (fresh == nullptr && past_watermark && budget_->try_reserve(bytes))
      fresh = new std::byte[bytes];
    if (fresh == nullptr) return false;
    std::byte* expected = nullptr;
    if (chunks_[k].compare_exchange_strong(expected, fresh,
                                           std::memory_order_release,
                                           std::memory_order_acquire)) {
      if (spilled) {
        spilled_.fetch_or(std::uint32_t{1} << k, std::memory_order_relaxed);
        spill_charged_.fetch_add(bytes, std::memory_order_relaxed);
        // The previous spill chunk stops being the append target the
        // moment a bigger one exists: schedule writeback and let the
        // kernel drop its resident pages (reads fault back from the page
        // cache, so a concurrent slow writer loses nothing).
        if (k > 0 &&
            ((spilled_.load(std::memory_order_relaxed) >> (k - 1)) & 1))
          spill_.arena->note_cold(
              chunks_[k - 1].load(std::memory_order_acquire), bytes >> 1);
      } else {
        charged_.fetch_add(bytes, std::memory_order_relaxed);
      }
      return true;
    }
    // Lost the installation race; undo our allocation.
    if (spilled)
      spill_.arena->unmap_chunk(fresh, bytes);
    else {
      delete[] fresh;
      budget_->release(bytes);
    }
    return true;
  }

  Budget* budget_;
  SpillPolicy spill_;
  unsigned chunk0_bits_ = 8;
  std::atomic<std::uint64_t> top_{0};
  std::atomic<std::size_t> charged_{0};
  std::atomic<std::size_t> spill_charged_{0};
  std::atomic<std::size_t> allocated_{0};
  std::atomic<std::uint32_t> spilled_{0};  // bit k: chunk k is spill-backed
  std::array<std::atomic<std::byte*>, kMaxChunks> chunks_{};
};

/// CAS-based open-addressing insert-if-absent over byte strings.
/// Records are framed [hash:u64][parent:u64?][len:u32][payload] in a
/// ChunkedBytePool; the returned ref is the record's byte offset.
///
/// Concurrency contract: insert() from any thread; at()/parent_at() are
/// safe for any ref a completed insert returned (records are immutable
/// and never move); size() is an instantaneous count.
template <class Budget>
class AtomicByteTable {
 public:
  static constexpr std::uint64_t kNoParent = ~0ull;

  struct InsertResult {
    InsertOutcome outcome;
    std::uint32_t ref = 0;  // record offset; valid unless Exhausted
  };

  /// `initial_slots` is rounded up to a power of two (floor 64) and the
  /// slot array is charged unconditionally — a table that cannot afford
  /// its floor is born exhausted, not born lying (see MemoryBudget::charge).
  AtomicByteTable(Budget& budget, std::size_t initial_slots,
                  std::size_t chunk0_bytes, bool track_parents,
                  SpillPolicy spill = {})
      : budget_(&budget),
        pool_(budget, chunk0_bytes, spill),
        track_parents_(track_parents) {
    std::size_t n = 64;
    while (n < initial_slots) n <<= 1;
    auto* t = new Slots(n);
    if (!budget_->try_reserve(slot_bytes(n))) budget_->charge(slot_bytes(n));
    slots_charged_.store(slot_bytes(n), std::memory_order_relaxed);
    slot_count_.store(n, std::memory_order_relaxed);
    table_.store(t, std::memory_order_relaxed);
  }

  AtomicByteTable(const AtomicByteTable&) = delete;
  AtomicByteTable& operator=(const AtomicByteTable&) = delete;

  ~AtomicByteTable() { delete table_.load(std::memory_order_relaxed); }

  /// Insert-if-absent. `h` must be hash_bytes(state) — callers already
  /// have it for shard selection, so the table never rehashes.
  [[nodiscard]] InsertResult insert(std::span<const std::byte> state,
                                    std::uint64_t h,
                                    std::uint64_t parent = kNoParent) {
    for (;;) {
      std::optional<InsertResult> r;
      {
        EpochGuard guard(*this);
        r = try_insert(state, h, parent);
      }
      if (r) {
        // Best-effort growth at 70% load keeps probe chains short; the
        // hard 90% cap below guarantees termination even if growth is
        // refused by the budget.
        if (r->outcome == InsertOutcome::Inserted && over_load(7))
          (void)try_resize();
        return *r;
      }
      // Hard cap hit: the table MUST grow before another claim.
      if (!try_resize()) return {InsertOutcome::Exhausted, 0};
    }
  }

  /// Payload bytes of a stored record (stable span, never moves).
  [[nodiscard]] std::span<const std::byte> at(std::uint32_t ref) const {
    const std::byte* p = pool_.data(ref);
    std::uint32_t len = 0;
    std::memcpy(&len, p + len_offset(), sizeof(len));
    return {p + header_bytes(), len};
  }

  [[nodiscard]] std::uint64_t hash_at(std::uint32_t ref) const {
    std::uint64_t h = 0;
    std::memcpy(&h, pool_.data(ref), sizeof(h));
    return h;
  }

  [[nodiscard]] std::uint64_t parent_at(std::uint32_t ref) const {
    CCREF_REQUIRE(track_parents_);
    std::uint64_t p = 0;
    std::memcpy(&p, pool_.data(ref) + sizeof(std::uint64_t), sizeof(p));
    return p;
  }

  [[nodiscard]] std::size_t size() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Summed payload lengths of stored records (headers excluded).
  [[nodiscard]] std::size_t payload_bytes() const {
    return payload_bytes_.load(std::memory_order_relaxed);
  }

  /// Bytes charged to the budget: slot array(s) plus RAM pool chunks.
  [[nodiscard]] std::size_t charged() const {
    return slots_charged_.load(std::memory_order_relaxed) + pool_.charged();
  }

  /// Bytes of record storage held in mmap-backed spill files.
  [[nodiscard]] std::size_t spill_bytes() const { return pool_.spill_bytes(); }

  /// Pool bytes held but never occupied by a record (chunk-seam skips and
  /// the final chunk's tail).
  [[nodiscard]] std::size_t waste_bytes() const { return pool_.bytes_waste(); }

 private:
  static constexpr std::uint64_t kPendingBit = 1ull << 63;
  static constexpr std::uint64_t kTagMask = 0x7fffffff00000000ull;
  static constexpr std::uint64_t kOffMask = 0x00000000ffffffffull;
  static constexpr std::size_t kStripes = 16;

  struct Slots {
    explicit Slots(std::size_t n)
        : count(n), words(new std::atomic<std::uint64_t>[n]()) {}
    std::size_t count;
    std::unique_ptr<std::atomic<std::uint64_t>[]> words;
    [[nodiscard]] std::atomic<std::uint64_t>& word(std::size_t i) {
      return words[i];
    }
  };

  struct alignas(64) Stripe {
    std::atomic<std::size_t> writers{0};
  };

  /// Striped writer-presence count. Entering a stripe then checking
  /// `resizing_` (both seq_cst) guarantees: either the resizer's drain
  /// loop observes this writer and waits, or the writer observes the
  /// flag and backs out — never neither (total seq_cst order).
  class EpochGuard {
   public:
    explicit EpochGuard(AtomicByteTable& t)
        : stripe_(t.stripes_[stripe_index()].writers) {
      SpinBackoff backoff;
      for (;;) {
        stripe_.fetch_add(1, std::memory_order_seq_cst);
        if (!t.resizing_.load(std::memory_order_seq_cst)) return;
        stripe_.fetch_sub(1, std::memory_order_release);
        while (t.resizing_.load(std::memory_order_acquire)) backoff.pause();
      }
    }
    ~EpochGuard() { stripe_.fetch_sub(1, std::memory_order_release); }

   private:
    [[nodiscard]] static std::size_t stripe_index() {
      // Thread-stable stripe pick; contiguous ids from the checker's pool
      // would also work, but hashing the tls address needs no plumbing.
      static thread_local const char tls_anchor = 0;
      auto v = reinterpret_cast<std::uintptr_t>(&tls_anchor);
      return (v >> 6) % kStripes;
    }
    std::atomic<std::size_t>& stripe_;
  };

  [[nodiscard]] static std::size_t slot_bytes(std::size_t n) {
    return n * sizeof(std::atomic<std::uint64_t>);
  }
  [[nodiscard]] std::size_t len_offset() const {
    return track_parents_ ? 16 : 8;
  }
  [[nodiscard]] std::size_t header_bytes() const {
    return track_parents_ ? 20 : 12;
  }
  [[nodiscard]] static std::uint64_t tag_of(std::uint64_t h) {
    return (h >> 33) << 32;  // bits 32..62; bit 63 stays clear
  }

  // Reads the count mirror, NOT the table pointer: this runs outside the
  // epoch guard, where dereferencing table_ would race the resizer's free.
  [[nodiscard]] bool over_load(std::size_t tenths) const {
    return size_.load(std::memory_order_relaxed) * 10 >
           slot_count_.load(std::memory_order_relaxed) * tenths;
  }

  // nullopt => hard load cap reached; caller must resize and retry.
  [[nodiscard]] std::optional<InsertResult> try_insert(
      std::span<const std::byte> state, std::uint64_t h,
      std::uint64_t parent) {
    Slots* tab = table_.load(std::memory_order_acquire);
    const std::uint64_t mask = tab->count - 1;
    const std::uint64_t tag = tag_of(h);
    std::size_t slot = h & mask;
    SpinBackoff backoff;
    for (;;) {
      std::uint64_t w = tab->word(slot).load(std::memory_order_acquire);
      if (w == 0) {
        // Reserve occupancy BEFORE claiming: occupied_ counts published
        // records plus in-flight claims, so the table provably never
        // exceeds 90% occupancy — which is what guarantees every probe
        // loop terminates at an empty slot. A stale size_-based check
        // would let N concurrent claimers overshoot the cap together.
        const std::size_t o = occupied_.fetch_add(1, std::memory_order_relaxed);
        if ((o + 1) * 10 >= tab->count * 9) {
          occupied_.fetch_sub(1, std::memory_order_relaxed);
          return std::nullopt;
        }
        if (!tab->word(slot).compare_exchange_strong(
                w, kPendingBit | tag, std::memory_order_acq_rel,
                std::memory_order_acquire)) {
          occupied_.fetch_sub(1, std::memory_order_relaxed);
          continue;  // lost the claim; re-examine the refreshed word
        }
        const std::uint32_t off = append_record(state, h, parent);
        if (off == ChunkedBytePool<Budget>::kNpos) {
          // Roll the claim back so the slot is reusable; spinners with a
          // matching tag resume probing from scratch.
          tab->word(slot).store(0, std::memory_order_release);
          occupied_.fetch_sub(1, std::memory_order_relaxed);
          return InsertResult{InsertOutcome::Exhausted, 0};
        }
        tab->word(slot).store(tag | (std::uint64_t{off} + 1),
                              std::memory_order_release);
        size_.fetch_add(1, std::memory_order_relaxed);
        return InsertResult{InsertOutcome::Inserted, off};
      }
      if (w & kPendingBit) {
        if ((w & kTagMask) == tag) {
          // Possibly our key mid-publish: wait for the owner's release
          // store (or its rollback to 0) and look again.
          backoff.pause();
          continue;
        }
        // Pending claim for a different hash prefix: definitely not our
        // key; probe past it.
      } else if ((w & kTagMask) == tag) {
        const auto off = static_cast<std::uint32_t>((w & kOffMask) - 1);
        if (hash_at(off) == h && equals(off, state))
          return InsertResult{InsertOutcome::AlreadyPresent, off};
      }
      slot = (slot + 1) & mask;
    }
  }

  [[nodiscard]] std::uint32_t append_record(std::span<const std::byte> state,
                                            std::uint64_t h,
                                            std::uint64_t parent) {
    const std::uint32_t off = pool_.alloc(header_bytes() + state.size());
    if (off == ChunkedBytePool<Budget>::kNpos) return off;
    std::byte* p = pool_.data(off);
    std::memcpy(p, &h, sizeof(h));
    if (track_parents_)
      std::memcpy(p + sizeof(std::uint64_t), &parent, sizeof(parent));
    const auto len = static_cast<std::uint32_t>(state.size());
    std::memcpy(p + len_offset(), &len, sizeof(len));
    if (!state.empty())
      std::memcpy(p + header_bytes(), state.data(), state.size());
    payload_bytes_.fetch_add(state.size(), std::memory_order_relaxed);
    return off;
  }

  [[nodiscard]] bool equals(std::uint32_t off,
                            std::span<const std::byte> state) const {
    auto stored = at(off);
    return stored.size() == state.size() &&
           (state.empty() ||
            std::memcmp(stored.data(), state.data(), state.size()) == 0);
  }

  /// Grow the slot array 2x. Returns false only if the budget refuses
  /// the new array. Single resizer at a time; concurrent callers wait
  /// for the active resize and report success (the table grew).
  [[nodiscard]] bool try_resize() {
    bool expected = false;
    if (!resizing_.compare_exchange_strong(expected, true,
                                           std::memory_order_seq_cst)) {
      SpinBackoff backoff;
      while (resizing_.load(std::memory_order_acquire)) backoff.pause();
      return true;
    }
    Slots* old = table_.load(std::memory_order_relaxed);
    // Re-check under the flag: the resize that just finished may already
    // have grown past our trigger.
    if (size_.load(std::memory_order_relaxed) * 10 <= old->count * 7) {
      resizing_.store(false, std::memory_order_release);
      return true;
    }
    const std::size_t fresh_count = old->count * 2;
    if (!budget_->try_reserve(slot_bytes(fresh_count))) {
      resizing_.store(false, std::memory_order_release);
      return false;
    }
    // Quiesce writers: after every stripe drains, no claim is in flight,
    // so every nonzero word is published (no pending bits to migrate).
    for (auto& s : stripes_) {
      SpinBackoff backoff;
      while (s.writers.load(std::memory_order_seq_cst) != 0) backoff.pause();
    }
    auto* fresh = new Slots(fresh_count);
    const std::uint64_t mask = fresh_count - 1;
    for (std::size_t i = 0; i < old->count; ++i) {
      const std::uint64_t w = old->word(i).load(std::memory_order_relaxed);
      if (w == 0) continue;
      CCREF_ASSERT(!(w & kPendingBit));
      const auto off = static_cast<std::uint32_t>((w & kOffMask) - 1);
      std::size_t slot = hash_at(off) & mask;
      while (fresh->word(slot).load(std::memory_order_relaxed) != 0)
        slot = (slot + 1) & mask;
      fresh->word(slot).store(w, std::memory_order_relaxed);
    }
    table_.store(fresh, std::memory_order_release);
    slot_count_.store(fresh_count, std::memory_order_relaxed);
    slots_charged_.fetch_add(slot_bytes(fresh_count) - slot_bytes(old->count),
                             std::memory_order_relaxed);
    budget_->release(slot_bytes(old->count));
    // Safe to free: drained writers re-enter through EpochGuard, which
    // loads table_ only after observing resizing_ == false.
    delete old;
    resizing_.store(false, std::memory_order_release);
    return true;
  }

  Budget* budget_;
  ChunkedBytePool<Budget> pool_;
  bool track_parents_;
  std::atomic<Slots*> table_{nullptr};
  std::atomic<bool> resizing_{false};
  std::atomic<std::size_t> size_{0};
  std::atomic<std::size_t> occupied_{0};    // size_ + in-flight claims
  std::atomic<std::size_t> slot_count_{0};  // mirror of table_->count
  std::atomic<std::size_t> payload_bytes_{0};
  std::atomic<std::size_t> slots_charged_{0};
  std::array<Stripe, kStripes> stripes_{};
};

}  // namespace ccref
