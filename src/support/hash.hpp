// 64-bit hashing for byte-encoded protocol states.
//
// The model checker stores millions of encoded states in an open-addressing
// set; we need a fast, well-mixed, seedable hash. This is a standalone
// implementation of the wyhash-style mix used widely in HPC hash tables.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>

namespace ccref {

namespace detail {

inline std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  // 64x64 -> 128 multiply, fold halves. __uint128_t is available on all
  // 64-bit gcc/clang targets we care about.
  __uint128_t p = static_cast<__uint128_t>(a) * b;
  return static_cast<std::uint64_t>(p) ^ static_cast<std::uint64_t>(p >> 64);
}

inline std::uint64_t load64(const std::byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, 8);
  return v;
}

inline std::uint64_t load32(const std::byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, 4);
  return v;
}

}  // namespace detail

/// Hash an arbitrary byte span with a seed. Deterministic across runs.
inline std::uint64_t hash_bytes(std::span<const std::byte> data,
                                std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
  constexpr std::uint64_t k0 = 0xa0761d6478bd642full;
  constexpr std::uint64_t k1 = 0xe7037ed1a0b428dbull;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  const std::uint64_t len = n;
  std::uint64_t h = seed ^ detail::mix64(static_cast<std::uint64_t>(n), k0);
  while (n >= 16) {
    h = detail::mix64(detail::load64(p) ^ k0, detail::load64(p + 8) ^ h);
    p += 16;
    n -= 16;
  }
  std::uint64_t a = 0, b = 0;
  if (n >= 8) {
    a = detail::load64(p);
    p += 8;
    n -= 8;
  }
  if (n >= 4) {
    b = detail::load32(p);
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    b = (b << 8) | static_cast<std::uint64_t>(*p);
    ++p;
    --n;
  }
  h = detail::mix64(a ^ k1, b ^ h);
  // Length-mix the finalizer. Inputs of 1-4 bytes (collapse-compression
  // component keys are mostly this short) reach here having touched only the
  // tail multiply; folding the length in once more decorrelates same-value
  // prefixes of different lengths and breaks up low-bit clustering that an
  // open-addressing table would otherwise inherit.
  return detail::mix64(h ^ len, h ^ k1);
}

/// Combine two 64-bit hashes (order-sensitive).
inline std::uint64_t hash_combine(std::uint64_t h, std::uint64_t v) {
  return detail::mix64(h ^ 0x2545f4914f6cdd1dull, v ^ 0x9e3779b97f4a7c15ull);
}

}  // namespace ccref
