// Chase–Lev work-stealing deque (SPAA'05), specialized to pointer-like
// payloads for the parallel checker's frontiers.
//
// One owner thread pushes and pops at the bottom (both lock-free, no CAS
// on the fast path); any other thread steals from the top with a single
// CAS. The owner and thieves race only on the last element, which the
// CAS on `top_` arbitrates.
//
// Memory-ordering note: the textbook formulation uses standalone
// memory fences. ThreadSanitizer does not model std::atomic_thread_fence
// and reports false races through it, so this implementation puts
// seq_cst on the top_/bottom_ accesses that need StoreLoad ordering
// instead — marginally slower on weakly-ordered hardware, but TSan can
// verify every run of it (the TSan CI sweep is part of the acceptance
// criteria for the lock-free engine).
//
// Ring growth: the owner copies the live window into a ring of twice
// the capacity and publishes it with a release store. Retired rings are
// kept until destruction because a thief that loaded the old ring
// pointer may still read a cell from it — the cell it reads is in the
// copied window and still holds the correct value (cells are never
// overwritten until `bottom_` laps them, which the capacity check
// prevents while any un-stolen entry remains).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/contracts.hpp"

namespace ccref {

/// T must be a pointer (or pointer-sized trivially copyable) type;
/// T{} (null) is the "empty / lost race" sentinel and must never be
/// pushed.
template <class T>
class WorkStealDeque {
 public:
  explicit WorkStealDeque(std::size_t initial_capacity = 64) {
    std::size_t cap = 8;
    while (cap < initial_capacity) cap <<= 1;
    active_.store(new Ring(cap), std::memory_order_relaxed);
  }

  WorkStealDeque(const WorkStealDeque&) = delete;
  WorkStealDeque& operator=(const WorkStealDeque&) = delete;

  ~WorkStealDeque() { delete active_.load(std::memory_order_relaxed); }

  /// Owner only.
  void push(T item) {
    CCREF_REQUIRE(item != T{});
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* ring = active_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(ring->capacity)) ring = grow(t, b);
    ring->cell(b).store(item, std::memory_order_relaxed);
    // seq_cst publish: a thief's subsequent bottom_ load both sees the
    // new count and (via release/acquire) the cell contents.
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }

  /// Owner only. T{} when empty.
  [[nodiscard]] T pop() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    // seq_cst StoreLoad: the reservation of slot b must be visible to
    // thieves before we read top_, or owner and thief could both take
    // the last element.
    bottom_.store(b, std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    if (t > b) {  // deque was empty; undo the reservation
      bottom_.store(b + 1, std::memory_order_relaxed);
      return T{};
    }
    Ring* ring = active_.load(std::memory_order_relaxed);
    T item = ring->cell(b).load(std::memory_order_relaxed);
    if (t == b) {
      // Last element: race thieves for it via top_.
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_seq_cst))
        item = T{};  // a thief won
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Any thread. T{} when empty or on a lost race (caller retries or
  /// moves to the next victim).
  [[nodiscard]] T steal() {
    std::int64_t t = top_.load(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_seq_cst);
    if (t >= b) return T{};
    Ring* ring = active_.load(std::memory_order_acquire);
    T item = ring->cell(t).load(std::memory_order_relaxed);
    // The CAS both claims index t and validates that the cell we read
    // was not recycled: the owner only overwrites a cell after top_
    // has moved past it, which would make this CAS fail.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst))
      return T{};
    return item;
  }

  /// Owner only (or quiescent): live element count snapshot.
  [[nodiscard]] std::size_t size() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? static_cast<std::size_t>(b - t) : 0;
  }

 private:
  struct Ring {
    explicit Ring(std::size_t cap)
        : capacity(cap), mask(cap - 1), cells(new std::atomic<T>[cap]) {}
    std::size_t capacity;
    std::size_t mask;
    std::unique_ptr<std::atomic<T>[]> cells;
    [[nodiscard]] std::atomic<T>& cell(std::int64_t i) {
      return cells[static_cast<std::size_t>(i) & mask];
    }
  };

  Ring* grow(std::int64_t t, std::int64_t b) {
    Ring* old = active_.load(std::memory_order_relaxed);
    auto* fresh = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i)
      fresh->cell(i).store(old->cell(i).load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
    active_.store(fresh, std::memory_order_release);
    // A thief may still hold `old`; retire it until destruction.
    retired_.emplace_back(old);
    return fresh;
  }

  std::atomic<std::int64_t> top_{0};
  std::atomic<std::int64_t> bottom_{0};
  std::atomic<Ring*> active_{nullptr};
  std::vector<std::unique_ptr<Ring>> retired_;  // owner-only mutation
};

}  // namespace ccref
