#include "support/cli.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "support/contracts.hpp"
#include "support/strings.hpp"

namespace ccref {

std::optional<std::uint64_t> parse_uint(std::string_view text,
                                        std::uint64_t min, std::uint64_t max) {
  std::uint64_t value = 0;
  auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(),
                                   value, 10);
  if (ec != std::errc() || ptr != text.data() + text.size()) return {};
  if (value < min || value > max) return {};
  return value;
}

std::optional<std::uint64_t> parse_size(std::string_view text,
                                        std::uint64_t min, std::uint64_t max) {
  if (text.empty()) return {};
  std::uint64_t mult = 1;
  switch (text.back()) {
    case 'K': case 'k': mult = std::uint64_t{1} << 10; break;
    case 'M': case 'm': mult = std::uint64_t{1} << 20; break;
    case 'G': case 'g': mult = std::uint64_t{1} << 30; break;
    case 'T': case 't': mult = std::uint64_t{1} << 40; break;
    default: break;
  }
  if (mult != 1) text.remove_suffix(1);
  // Pre-dividing the cap by the multiplier makes the overflow check exact:
  // any digits value above max/mult would overflow or bust the range.
  auto digits =
      parse_uint(text, 0, std::numeric_limits<std::uint64_t>::max() / mult);
  if (!digits) return {};
  const std::uint64_t value = *digits * mult;
  if (value < min || value > max) return {};
  return value;
}

Cli::Cli(int argc, char** argv) {
  CCREF_REQUIRE(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
    } else if (arg.starts_with("--")) {
      arg.remove_prefix(2);
      auto eq = arg.find('=');
      if (eq != std::string_view::npos) {
        values_.emplace(std::string(arg.substr(0, eq)),
                        std::string(arg.substr(eq + 1)));
      } else if (i + 1 < argc && argv[i + 1][0] != '-') {
        values_.emplace(std::string(arg), std::string(argv[++i]));
      } else {
        values_.emplace(std::string(arg), "true");
      }
    } else {
      positional_.emplace_back(arg);
    }
  }
}

std::string Cli::str_flag(std::string_view name, std::string_view def,
                          std::string_view help) {
  decls_.push_back({std::string(name), std::string(def), std::string(help)});
  auto it = values_.find(name);
  if (it == values_.end()) return std::string(def);
  std::string v = it->second;
  values_.erase(it);
  return v;
}

std::int64_t Cli::int_flag(std::string_view name, std::int64_t def,
                           std::string_view help) {
  std::string v = str_flag(name, strf("%lld", static_cast<long long>(def)),
                           help);
  char* end = nullptr;
  long long parsed = std::strtoll(v.c_str(), &end, 10);
  if (!end || *end != '\0' || v.empty()) {
    std::fprintf(stderr, "%s: bad value for --%.*s: '%s' (expected integer)\n",
                 program_.c_str(), static_cast<int>(name.size()), name.data(),
                 v.c_str());
    std::exit(2);
  }
  return parsed;
}

std::uint64_t Cli::uint_flag(std::string_view name, std::uint64_t def,
                             std::uint64_t min, std::uint64_t max,
                             std::string_view help) {
  std::string v = str_flag(
      name, strf("%llu", static_cast<unsigned long long>(def)), help);
  if (auto parsed = parse_uint(v, min, max)) return *parsed;
  std::fprintf(stderr,
               "%s: bad value for --%.*s: '%s' (expected integer in "
               "[%llu, %llu])\n",
               program_.c_str(), static_cast<int>(name.size()), name.data(),
               v.c_str(), static_cast<unsigned long long>(min),
               static_cast<unsigned long long>(max));
  std::exit(2);
}

std::uint64_t Cli::size_flag(std::string_view name, std::string_view def,
                             std::uint64_t min, std::uint64_t max,
                             std::string_view help) {
  std::string v = str_flag(name, def, help);
  if (auto parsed = parse_size(v, min, max)) return *parsed;
  std::fprintf(stderr,
               "%s: bad value for --%.*s: '%s' (expected bytes with an "
               "optional K/M/G/T suffix, in [%llu, %llu])\n",
               program_.c_str(), static_cast<int>(name.size()), name.data(),
               v.c_str(), static_cast<unsigned long long>(min),
               static_cast<unsigned long long>(max));
  std::exit(2);
}

double Cli::double_flag(std::string_view name, double def,
                        std::string_view help) {
  std::string v = str_flag(name, strf("%g", def), help);
  char* end = nullptr;
  double parsed = std::strtod(v.c_str(), &end);
  // strtod also accepts "nan", "inf" and hex floats ("0x1p4"); a NaN here
  // makes every downstream comparison false, so gates like --assert-speedup
  // would pass vacuously. Require a plain finite decimal number.
  const bool hex = v.find('x') != std::string::npos ||
                   v.find('X') != std::string::npos;
  if (!end || *end != '\0' || v.empty() || hex || !std::isfinite(parsed)) {
    std::fprintf(stderr,
                 "%s: bad value for --%.*s: '%s' (expected finite decimal "
                 "number)\n",
                 program_.c_str(), static_cast<int>(name.size()), name.data(),
                 v.c_str());
    std::exit(2);
  }
  return parsed;
}

bool Cli::bool_flag(std::string_view name, bool def, std::string_view help) {
  std::string v = str_flag(name, def ? "true" : "false", help);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  std::fprintf(stderr,
               "%s: bad value for --%.*s: '%s' (expected true or false)\n",
               program_.c_str(), static_cast<int>(name.size()), name.data(),
               v.c_str());
  std::exit(2);
}

void Cli::finish() {
  if (help_requested_) {
    std::printf("usage: %s [flags]\n", program_.c_str());
    for (const auto& d : decls_)
      std::printf("  --%-24s (default: %s) %s\n", d.name.c_str(),
                  d.def.c_str(), d.help.c_str());
    std::exit(0);
  }
  for (const auto& [name, value] : values_) {
    std::fprintf(stderr, "%s: unknown flag --%s=%s\n", program_.c_str(),
                 name.c_str(), value.c_str());
    std::exit(2);
  }
}

}  // namespace ccref
