// NodeSet: a value-semantic set of remote-node ids (0..63) used for
// directory copysets in invalidate-style protocols.
//
// The paper's invalidate protocol tracks which remotes hold a shared copy;
// with at most 64 nodes (the paper's own scaling limit) a bitmask is exact.
#pragma once

#include <bit>
#include <cstdint>

#include "support/contracts.hpp"

namespace ccref {

using NodeId = std::uint8_t;

/// Maximum number of remote nodes a protocol instance may have.
inline constexpr int kMaxNodes = 64;

class NodeSet {
 public:
  constexpr NodeSet() = default;
  constexpr explicit NodeSet(std::uint64_t bits) : bits_(bits) {}

  [[nodiscard]] static constexpr NodeSet all(int n) {
    return NodeSet(n >= 64 ? ~0ull : ((1ull << n) - 1));
  }

  [[nodiscard]] constexpr bool contains(NodeId id) const {
    return (bits_ >> id) & 1u;
  }
  [[nodiscard]] constexpr bool empty() const { return bits_ == 0; }
  [[nodiscard]] constexpr int size() const { return std::popcount(bits_); }
  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }

  constexpr void add(NodeId id) { bits_ |= (1ull << id); }
  constexpr void remove(NodeId id) { bits_ &= ~(1ull << id); }
  constexpr void clear() { bits_ = 0; }

  /// Lowest-numbered member; set must be non-empty.
  [[nodiscard]] NodeId first() const {
    CCREF_REQUIRE(!empty());
    return static_cast<NodeId>(std::countr_zero(bits_));
  }

  /// Member following `id`, or -1 if none. Enables range-style iteration.
  [[nodiscard]] int next_after(NodeId id) const {
    std::uint64_t rest = bits_ & ~((2ull << id) - 1);
    return rest == 0 ? -1 : std::countr_zero(rest);
  }

  friend constexpr bool operator==(NodeSet, NodeSet) = default;

  /// Iteration support: `for (NodeId i : set)`.
  class iterator {
   public:
    constexpr iterator(std::uint64_t bits) : bits_(bits) {}
    NodeId operator*() const {
      return static_cast<NodeId>(std::countr_zero(bits_));
    }
    iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    friend constexpr bool operator==(iterator, iterator) = default;

   private:
    std::uint64_t bits_;
  };
  [[nodiscard]] iterator begin() const { return iterator(bits_); }
  [[nodiscard]] iterator end() const { return iterator(0); }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace ccref
