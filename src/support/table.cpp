#include "support/table.hpp"

#include <algorithm>
#include <sstream>

#include "support/contracts.hpp"

namespace ccref {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  CCREF_REQUIRE(!header_.empty());
}

void Table::row(std::vector<std::string> cells) {
  CCREF_REQUIRE(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    width[c] = header_[c].size();
  for (const auto& r : rows_)
    for (std::size_t c = 0; c < r.size(); ++c)
      width[c] = std::max(width[c], r[c].size());

  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c];
      os << std::string(width[c] - cells[c].size() + 1, ' ') << '|';
    }
    os << '\n';
  };

  emit(header_);
  os << '|';
  for (std::size_t c = 0; c < header_.size(); ++c)
    os << std::string(width[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : rows_) emit(r);
}

std::string Table::to_string() const {
  std::ostringstream ss;
  print(ss);
  return ss.str();
}

}  // namespace ccref
