#include "support/spill.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>

#include "support/strings.hpp"

namespace ccref {

namespace {
constexpr std::size_t kPage = 4096;

std::size_t page_round(std::size_t bytes) {
  return (bytes + kPage - 1) & ~(kPage - 1);
}
}  // namespace

SpillArena::SpillArena(std::string dir, std::size_t max_bytes)
    : dir_(std::move(dir)),
      max_bytes_(max_bytes == 0 ? std::numeric_limits<std::size_t>::max()
                                : max_bytes) {
  if (dir_.empty()) return;
  if (::mkdir(dir_.c_str(), 0700) != 0 && errno != EEXIST) return;
  // Probe writability once so a read-only directory fails at construction,
  // when the caller can still report a usable error, not mid-exploration.
  std::string probe = dir_ + "/.ccref-spill-probe";
  int fd = ::open(probe.c_str(), O_CREAT | O_RDWR, 0600);
  if (fd < 0) return;
  ::close(fd);
  ::unlink(probe.c_str());
  ok_ = true;
}

SpillArena::~SpillArena() = default;  // chunks unmap via their owners

std::byte* SpillArena::map_chunk(std::size_t bytes) {
  if (!ok_ || bytes == 0) return nullptr;
  const std::size_t rounded = page_round(bytes);
  std::lock_guard<std::mutex> guard(mutex_);
  if (mapped_.load(std::memory_order_relaxed) + rounded > max_bytes_)
    return nullptr;
  std::string path = strf("%s/chunk-%llu.spill", dir_.c_str(),
                          static_cast<unsigned long long>(next_id_++));
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  if (fd < 0) return nullptr;
  if (::ftruncate(fd, static_cast<off_t>(rounded)) != 0) {
    ::close(fd);
    ::unlink(path.c_str());
    return nullptr;
  }
  void* p = ::mmap(nullptr, rounded, PROT_READ | PROT_WRITE, MAP_SHARED, fd,
                   0);
  // The mapping (not the directory entry) owns the blocks: unlink now so a
  // crashed or killed run leaves no files behind.
  ::close(fd);
  ::unlink(path.c_str());
  if (p == MAP_FAILED) return nullptr;
  mapped_.fetch_add(rounded, std::memory_order_relaxed);
  return static_cast<std::byte*>(p);
}

void SpillArena::unmap_chunk(std::byte* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t rounded = page_round(bytes);
  ::munmap(p, rounded);
  mapped_.fetch_sub(rounded, std::memory_order_relaxed);
}

void SpillArena::note_cold(std::byte* p, std::size_t bytes) {
  if (p == nullptr) return;
  const std::size_t rounded = page_round(bytes);
  ::msync(p, rounded, MS_ASYNC);
  ::madvise(p, rounded, MADV_DONTNEED);
}

}  // namespace ccref
