// Deterministic, seedable RNG (xoshiro256**) for workload generation and
// property-test protocol fuzzing. We avoid std::mt19937 because its state is
// large and its distributions are not reproducible across standard libraries;
// simulation results in EXPERIMENTS.md must be exactly reproducible.
#pragma once

#include <cstdint>

#include "support/contracts.hpp"

namespace ccref {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 seeding as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ull;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() {
    auto rotl = [](std::uint64_t x, int k) {
      return (x << k) | (x >> (64 - k));
    };
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    CCREF_REQUIRE(bound > 0);
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CCREF_REQUIRE(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

 private:
  std::uint64_t s_[4];
};

}  // namespace ccref
