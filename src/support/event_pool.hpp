// Indexed object pool for discrete-event simulation.
//
// Events live in fixed-size chunks and are addressed by 32-bit handles, so a
// calendar-queue entry is (timestamp, handle) — 12 bytes — instead of a
// pointer to a heap node. alloc()/release() recycle slots through an
// intrusive free list: after warm-up the simulator runs with zero per-event
// heap traffic, and the chunked backing store never moves live objects (no
// reallocation invalidation, unlike one growing vector).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "support/contracts.hpp"

namespace ccref {

template <class T>
class EventPool {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = 0xffffffffu;

  /// Number of objects per chunk; 4096 keeps a chunk of typical event sizes
  /// (16–32 bytes) inside one or two huge-page-friendly 64 KB spans.
  static constexpr std::uint32_t kChunkSize = 4096;

  [[nodiscard]] Handle alloc() {
    if (free_head_ != kNull) {
      Handle h = free_head_;
      Slot& s = slot(h);
      free_head_ = s.next_free;
      s.next_free = kLive;
      --free_count_;
      return h;
    }
    if (next_ == chunks_.size() * kChunkSize)
      chunks_.push_back(std::make_unique<Slot[]>(kChunkSize));
    Handle h = static_cast<Handle>(next_++);
    slot(h).next_free = kLive;
    return h;
  }

  void release(Handle h) {
    Slot& s = slot(h);
    CCREF_ASSERT_MSG(s.next_free == kLive, "double release of a pool handle");
    s.next_free = free_head_;
    free_head_ = h;
    ++free_count_;
  }

  [[nodiscard]] T& operator[](Handle h) { return slot(h).value; }
  [[nodiscard]] const T& operator[](Handle h) const { return slot(h).value; }

  /// Live objects (allocated and not released).
  [[nodiscard]] std::size_t size() const { return next_ - free_count_; }
  /// Slots ever created, live or on the free list.
  [[nodiscard]] std::size_t capacity() const { return next_; }
  [[nodiscard]] std::size_t memory_bytes() const {
    return chunks_.size() * kChunkSize * sizeof(Slot);
  }

 private:
  // Distinguishes live slots from free-listed ones; kNull is a valid list
  // terminator, so the live tag is a second reserved handle value.
  static constexpr Handle kLive = 0xfffffffeu;

  struct Slot {
    T value;
    Handle next_free = kLive;
  };

  [[nodiscard]] Slot& slot(Handle h) {
    CCREF_ASSERT(h < next_);
    return chunks_[h / kChunkSize][h % kChunkSize];
  }
  [[nodiscard]] const Slot& slot(Handle h) const {
    CCREF_ASSERT(h < next_);
    return chunks_[h / kChunkSize][h % kChunkSize];
  }

  std::vector<std::unique_ptr<Slot[]>> chunks_;
  std::size_t next_ = 0;
  std::size_t free_count_ = 0;
  Handle free_head_ = kNull;
};

}  // namespace ccref
