#include "support/run_file.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <utility>

#include "support/strings.hpp"

namespace ccref {

namespace {
// Distinguishes files of concurrent sets sharing one directory during the
// pre-unlink window (and keeps O_EXCL collisions impossible).
std::atomic<std::uint64_t> g_run_seq{0};
}  // namespace

bool ensure_run_dir(const std::string& dir) {
  if (dir.empty()) return false;
  if (::mkdir(dir.c_str(), 0700) != 0 && errno != EEXIST) return false;
  std::string probe = strf("%s/.ccref-run-probe-%d", dir.c_str(),
                           static_cast<int>(::getpid()));
  int fd = ::open(probe.c_str(), O_CREAT | O_RDWR, 0600);
  if (fd < 0) return false;
  ::close(fd);
  ::unlink(probe.c_str());
  return true;
}

RunFile& RunFile::operator=(RunFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    dead_ = std::exchange(other.dead_, false);
    size_ = std::exchange(other.size_, 0);
    flushed_ = std::exchange(other.flushed_, 0);
    buf_ = std::move(other.buf_);
    buf_used_ = std::exchange(other.buf_used_, 0);
  }
  return *this;
}

bool RunFile::open(const std::string& dir, const char* tag,
                   std::size_t buffer_bytes) {
  close();
  std::string path = strf(
      "%s/run-%d-%llu-%s.tmp", dir.c_str(), static_cast<int>(::getpid()),
      static_cast<unsigned long long>(
          g_run_seq.fetch_add(1, std::memory_order_relaxed)),
      tag);
  fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_EXCL, 0600);
  if (fd_ < 0) return false;
  // The fd owns the blocks from here: a crashed run leaves no files.
  ::unlink(path.c_str());
  dead_ = false;
  size_ = flushed_ = 0;
  buf_.resize(buffer_bytes == 0 ? 1 : buffer_bytes);
  buf_used_ = 0;
  return true;
}

bool RunFile::append(const void* data, std::size_t n) {
  if (!ok()) return false;
  const auto* p = static_cast<const std::byte*>(data);
  while (n > 0) {
    if (buf_used_ == buf_.size() && !flush()) return false;
    if (buf_used_ == 0 && n >= buf_.size()) {
      // Oversized writes bypass the buffer entirely.
      ssize_t w = ::pwrite(fd_, p, n, static_cast<off_t>(flushed_));
      if (w < 0 || static_cast<std::size_t>(w) != n) {
        dead_ = true;
        return false;
      }
      flushed_ += n;
      size_ += n;
      return true;
    }
    const std::size_t take = std::min(n, buf_.size() - buf_used_);
    std::memcpy(buf_.data() + buf_used_, p, take);
    buf_used_ += take;
    size_ += take;
    p += take;
    n -= take;
  }
  return true;
}

bool RunFile::flush() {
  if (!ok()) return false;
  if (buf_used_ == 0) return true;
  ssize_t w = ::pwrite(fd_, buf_.data(), buf_used_,
                       static_cast<off_t>(flushed_));
  if (w < 0 || static_cast<std::size_t>(w) != buf_used_) {
    dead_ = true;
    return false;
  }
  flushed_ += buf_used_;
  buf_used_ = 0;
  return true;
}

bool RunFile::pread_at(std::uint64_t offset, void* out, std::size_t n) const {
  if (fd_ < 0 || dead_ || offset + n > flushed_) return false;
  auto* p = static_cast<std::byte*>(out);
  while (n > 0) {
    ssize_t r = ::pread(fd_, p, n, static_cast<off_t>(offset));
    if (r <= 0) return false;
    offset += static_cast<std::uint64_t>(r);
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

bool RunFile::reset() {
  if (!ok()) return false;
  if (::ftruncate(fd_, 0) != 0) {
    dead_ = true;
    return false;
  }
  size_ = flushed_ = 0;
  buf_used_ = 0;
  return true;
}

void RunFile::close() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  dead_ = false;
  size_ = flushed_ = 0;
  buf_.clear();
  buf_used_ = 0;
}

bool RunFile::Reader::read(void* out, std::size_t n) {
  auto* p = static_cast<std::byte*>(out);
  while (n > 0) {
    if (buf_off_ == buf_len_) {
      const std::uint64_t left = remaining();
      if (left == 0) return false;
      buf_len_ = static_cast<std::size_t>(
          std::min<std::uint64_t>(left, buf_.size()));
      if (!file_->pread_at(pos_, buf_.data(), buf_len_)) return false;
      buf_off_ = 0;
    }
    const std::size_t take = std::min(n, buf_len_ - buf_off_);
    std::memcpy(p, buf_.data() + buf_off_, take);
    buf_off_ += take;
    pos_ += take;
    p += take;
    n -= take;
  }
  return true;
}

}  // namespace ccref
