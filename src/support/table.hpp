// ASCII table rendering for benchmark harnesses.
//
// Every bench binary reproduces a paper table; this prints aligned,
// markdown-compatible rows so EXPERIMENTS.md can embed them verbatim.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace ccref {

class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Append a data row; must have the same arity as the header.
  void row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ccref
