// mmap-backed spill tier for append-only byte pools.
//
// Table 3 caps verifications at 64 MB of *state memory*; once the visited
// set outgrows that, the run ends in `Unfinished`. A SpillArena lets the
// chunked pools (state payloads, COLLAPSE dictionaries) place whole chunks
// in file-backed mmap regions instead of RAM once a configurable high-water
// mark is reached, so exploration degrades to disk bandwidth instead of
// giving up: the RAM budget keeps covering the random-access structures
// (hash tables, entry indices) while the append-mostly pools overflow to
// disk.
//
// Design notes:
//   * Each chunk is its own file, created O_EXCL under the arena directory,
//     sized with ftruncate, mapped MAP_SHARED, then unlinked immediately —
//     the kernel keeps the blocks alive until munmap, and a crashed run
//     leaks no files.
//   * Eviction is advisory: note_cold() runs msync(MS_ASYNC) followed by
//     madvise(MADV_DONTNEED). For a MAP_SHARED file mapping this drops the
//     resident pages (dirty ones are written back first), while later reads
//     fault them back from the page cache / disk — data is never lost, only
//     demoted. The pools call it when a chunk stops being the append target.
//   * Accounting is separate from the RAM MemoryBudget: spill_bytes() is
//     reported alongside ram bytes, and `max_bytes` turns disk exhaustion
//     into a refused map_chunk() — the caller then reports Unfinished with
//     honest numbers, exactly like RAM exhaustion.
//
// Thread-safe: map/unmap take a mutex (chunk allocation is rare — pools
// allocate geometrically growing chunks); note_cold is lock-free.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

namespace ccref {

class SpillArena {
 public:
  /// Create (if needed) `dir` and anchor all spill files there. `max_bytes`
  /// caps the total mapped spill size; 0 means unlimited. Check ok() before
  /// use: a directory that cannot be created leaves the arena dead (every
  /// map_chunk refuses), which callers surface as an option error.
  explicit SpillArena(
      std::string dir,
      std::size_t max_bytes = std::numeric_limits<std::size_t>::max());
  ~SpillArena();

  SpillArena(const SpillArena&) = delete;
  SpillArena& operator=(const SpillArena&) = delete;

  /// True when the directory exists and a probe file could be created.
  [[nodiscard]] bool ok() const { return ok_; }

  /// Map a fresh zero-filled chunk of `bytes` (page-rounded internally);
  /// nullptr when the arena is dead, the cap would be exceeded, or the
  /// filesystem refuses (ENOSPC and friends — disk exhaustion is a normal
  /// outcome here, not a crash).
  [[nodiscard]] std::byte* map_chunk(std::size_t bytes);

  /// Unmap a chunk previously returned by map_chunk.
  void unmap_chunk(std::byte* p, std::size_t bytes);

  /// Advise the kernel that `[p, p+bytes)` will not be appended to again:
  /// schedule writeback and drop the resident pages. Reads remain valid.
  void note_cold(std::byte* p, std::size_t bytes);

  /// Bytes currently mapped from spill files.
  [[nodiscard]] std::size_t spill_bytes() const {
    return mapped_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t limit() const { return max_bytes_; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  std::size_t max_bytes_;
  bool ok_ = false;
  std::mutex mutex_;
  std::uint64_t next_id_ = 0;
  std::atomic<std::size_t> mapped_{0};
};

/// Spill routing for a chunked pool: with a non-null arena, chunk
/// allocations past `ram_watermark` bytes of budget use — and any
/// allocation the RAM budget refuses — come from the arena instead of the
/// heap. The default (null arena) keeps every pool purely RAM-resident.
struct SpillPolicy {
  SpillArena* arena = nullptr;
  /// Budget-use level (bytes) past which fresh chunks go to spill even if
  /// RAM headroom remains. Keeping this below the RAM limit leaves room
  /// for the tables/indices that cannot spill.
  std::size_t ram_watermark = std::numeric_limits<std::size_t>::max();
};

}  // namespace ccref
