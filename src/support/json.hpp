// Minimal JSON emission for machine-readable bench results.
//
// The bench binaries dump flat arrays of records (states, transitions,
// seconds, status, jobs) so the perf trajectory can be tracked across PRs
// as BENCH_*.json. Only what those records need: objects with string /
// integer / double fields, collected into one array and written atomically
// at the end of the run.
#pragma once

#include <cstdio>
#include <string>
#include <type_traits>
#include <vector>

namespace ccref {

class JsonObject {
 public:
  JsonObject& field(const std::string& key, const std::string& value) {
    add(key, "\"" + escape(value) + "\"");
    return *this;
  }
  JsonObject& field(const std::string& key, const char* value) {
    return field(key, std::string(value));
  }
  JsonObject& field(const std::string& key, bool value) {
    add(key, value ? "true" : "false");
    return *this;
  }
  // One template for every integer width so size_t / uint64_t (the same
  // type on LP64) don't collide as overloads.
  template <class T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonObject& field(const std::string& key, T value) {
    add(key, std::to_string(value));
    return *this;
  }
  JsonObject& field(const std::string& key, double value) {
    char buf[64];
    // Fixed-point for human-scale values; scientific below the %.6f floor
    // so omission probabilities like 5e-11 don't flatten to 0.000000.
    if (value != 0.0 && value < 1e-6 && value > -1e-6)
      std::snprintf(buf, sizeof(buf), "%.6e", value);
    else
      std::snprintf(buf, sizeof(buf), "%.6f", value);
    add(key, buf);
    return *this;
  }

  [[nodiscard]] std::string str() const { return "{" + body_ + "}"; }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    return out;
  }

  void add(const std::string& key, const std::string& rendered) {
    if (!body_.empty()) body_ += ",";
    body_ += "\"" + escape(key) + "\":" + rendered;
  }

  std::string body_;
};

/// Collects objects; writes a JSON array to `path`. Returns false (with a
/// message on stderr) if the file cannot be written.
class JsonArrayFile {
 public:
  void push(const JsonObject& obj) { rows_.push_back(obj.str()); }

  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::fputs("[\n", f);
    for (std::size_t i = 0; i < rows_.size(); ++i)
      std::fprintf(f, "  %s%s\n", rows_[i].c_str(),
                   i + 1 < rows_.size() ? "," : "");
    std::fputs("]\n", f);
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::string> rows_;
};

}  // namespace ccref
