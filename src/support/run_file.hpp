// Append-only run files for external-memory algorithms (the disk side of
// the delayed-duplicate-detection visited set, external_set.hpp).
//
// A RunFile is a plain POSIX file created O_EXCL in a caller-chosen
// directory and unlinked immediately — the fd (not the directory entry)
// owns the blocks, so a crashed or killed run leaves nothing behind, the
// same discipline as SpillArena's mmap chunks. Unlike the arena, run
// files are never mapped: access is strictly sequential append (buffered
// through a small RAM window, flushed with pwrite) plus sequential or
// positioned pread — the access pattern sorted-run merging wants, with
// no page-cache aliasing of a mapping to reason about.
//
// All I/O is checked: any short write/read or syscall failure marks the
// file dead and every later operation reports failure, so a full disk
// surfaces as an honest verdict upstream (Unfinished), never silent
// truncation of the visited set.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace ccref {

/// Create `dir` (one level) if missing and probe it for writability.
/// False when the directory cannot be created or written.
[[nodiscard]] bool ensure_run_dir(const std::string& dir);

class RunFile {
 public:
  RunFile() = default;
  ~RunFile() { close(); }

  RunFile(RunFile&& other) noexcept { *this = std::move(other); }
  RunFile& operator=(RunFile&& other) noexcept;

  RunFile(const RunFile&) = delete;
  RunFile& operator=(const RunFile&) = delete;

  /// Create a fresh unlinked file under `dir`. `tag` names the file for
  /// the brief window before unlink (debuggability only). `buffer_bytes`
  /// sizes the append buffer. False on any failure.
  [[nodiscard]] bool open(const std::string& dir, const char* tag,
                          std::size_t buffer_bytes = 4096);

  [[nodiscard]] bool ok() const { return fd_ >= 0 && !dead_; }

  /// Buffered append; false on I/O failure (file is dead afterwards).
  [[nodiscard]] bool append(const void* data, std::size_t n);

  /// Flush the append buffer to disk. Required before read/pread_at see
  /// the buffered tail. False on I/O failure.
  [[nodiscard]] bool flush();

  /// Logical bytes appended so far (buffered or flushed).
  [[nodiscard]] std::uint64_t bytes() const { return size_; }

  /// Positioned read of flushed content; false on failure or short read.
  [[nodiscard]] bool pread_at(std::uint64_t offset, void* out,
                              std::size_t n) const;

  /// Truncate back to empty and restart appends at offset zero (pending
  /// buffers are reused across merge generations). False on failure.
  [[nodiscard]] bool reset();

  void close();

  /// Buffered sequential reader over a RunFile's flushed content. The
  /// caller flushes first and does not append while reading.
  class Reader {
   public:
    explicit Reader(const RunFile& file, std::size_t buffer_bytes = 65536)
        : file_(&file), buf_(buffer_bytes) {}

    /// Read exactly `n` bytes; false at (clean or short) end of data.
    [[nodiscard]] bool read(void* out, std::size_t n);

    [[nodiscard]] std::uint64_t remaining() const {
      return file_->bytes() - pos_;
    }

   private:
    const RunFile* file_;
    std::vector<std::byte> buf_;
    std::uint64_t pos_ = 0;    // logical read position in the file
    std::size_t buf_off_ = 0;  // consumed bytes of the current window
    std::size_t buf_len_ = 0;  // valid bytes in the current window
  };

 private:
  int fd_ = -1;
  bool dead_ = false;
  std::uint64_t size_ = 0;     // logical size incl. buffered tail
  std::uint64_t flushed_ = 0;  // bytes actually written to the fd
  std::vector<std::byte> buf_;
  std::size_t buf_used_ = 0;
};

}  // namespace ccref
