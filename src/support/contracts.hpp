// Lightweight contract checks used across the library.
//
// CCREF_REQUIRE  — precondition on public API boundaries; always on.
// CCREF_ASSERT   — internal invariant; always on (the library is a research
//                  artifact where silent corruption is worse than the cost of
//                  a compare-and-branch).
// CCREF_UNREACHABLE — marks impossible control flow.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ccref {

[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line,
                                          const char* msg) {
  std::fprintf(stderr, "ccref: %s failed: %s at %s:%d%s%s\n", kind, expr, file,
               line, msg ? " — " : "", msg ? msg : "");
  std::abort();
}

}  // namespace ccref

#define CCREF_REQUIRE(cond)                                                 \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ccref::contract_failure("precondition", #cond, __FILE__, __LINE__,  \
                                nullptr);                                   \
  } while (0)

#define CCREF_REQUIRE_MSG(cond, msg)                                        \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ccref::contract_failure("precondition", #cond, __FILE__, __LINE__,  \
                                (msg));                                     \
  } while (0)

#define CCREF_ASSERT(cond)                                                  \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ccref::contract_failure("invariant", #cond, __FILE__, __LINE__,     \
                                nullptr);                                   \
  } while (0)

#define CCREF_ASSERT_MSG(cond, msg)                                         \
  do {                                                                      \
    if (!(cond))                                                            \
      ::ccref::contract_failure("invariant", #cond, __FILE__, __LINE__,     \
                                (msg));                                     \
  } while (0)

#define CCREF_UNREACHABLE(msg)                                              \
  ::ccref::contract_failure("unreachable", "control flow", __FILE__,        \
                            __LINE__, (msg))
