// Batched calendar queue (Brown 1988) for discrete-event simulation.
//
// A priority queue over 64-bit cycle timestamps with O(1) amortized push and
// pop: time is divided into fixed-width "days" hashed onto a ring of
// buckets, so an event lands in its bucket with one division and pop scans
// only the current day's bucket. Buckets are unsorted batches (a push is an
// append, never an insertion sort); pop pays one linear scan of the — on
// average one-or-two-entry — current bucket, which beats a binary heap's
// pointer-chasing log n for the millions-of-events queues the simulator
// runs. The ring doubles/halves and re-estimates the day width as the
// population drifts, keeping average occupancy near one entry per bucket.
//
// Payloads are 32-bit handles (see support/event_pool.hpp); an entry is 12
// bytes and bucket storage is recycled across resizes.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "support/contracts.hpp"

namespace ccref {

class CalendarQueue {
 public:
  /// `width_hint` is the expected gap between consecutive event times in
  /// cycles; 0 lets the first resize estimate it from the live population.
  explicit CalendarQueue(std::uint64_t width_hint = 0)
      : width_(width_hint ? width_hint : 1) {
    buckets_.resize(kMinBuckets);
  }

  void push(std::uint64_t time, std::uint32_t payload) {
    // Keep the cursor at or before every pending entry: an enqueue into an
    // already-scanned day must pull the cursor back or pop would return a
    // later event first (Brown's "enqueue below current time" rule).
    if (time / width_ < tick_) tick_ = time / width_;
    bucket_for(time).push_back({time, payload});
    ++size_;
    if (size_ > buckets_.size() * 2) resize(buckets_.size() * 2);
  }

  /// Remove the minimum entry (ties broken by payload). Returns false when
  /// empty.
  [[nodiscard]] bool pop(std::uint64_t& time, std::uint32_t& payload) {
    if (size_ == 0) return false;
    // Scan forward one day at a time; entries at or before the cursor's day
    // are due. A full fruitless rotation (sparse queue, every pending event
    // far in the future) falls through to a direct jump to the global
    // minimum so pop stays O(n/nbuckets) amortized, not O(year length).
    for (std::size_t attempt = 0; attempt < buckets_.size(); ++attempt) {
      if (pop_due(time, payload)) return true;
      ++tick_;
    }
    std::uint64_t min_day = ~std::uint64_t{0};
    for (const auto& b : buckets_)
      for (const Entry& e : b) min_day = std::min(min_day, e.time / width_);
    tick_ = min_day;
    bool ok = pop_due(time, payload);
    CCREF_ASSERT_MSG(ok, "calendar accounting: size_ > 0 but no entry found");
    return ok;
  }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] std::size_t bucket_count() const { return buckets_.size(); }
  [[nodiscard]] std::uint64_t day_width() const { return width_; }

 private:
  struct Entry {
    std::uint64_t time;
    std::uint32_t payload;
  };
  static constexpr std::size_t kMinBuckets = 16;

  [[nodiscard]] std::vector<Entry>& bucket_for(std::uint64_t time) {
    return buckets_[(time / width_) & (buckets_.size() - 1)];
  }

  /// Pop the best due entry (day <= tick_) from the cursor's bucket.
  [[nodiscard]] bool pop_due(std::uint64_t& time, std::uint32_t& payload) {
    auto& b = buckets_[tick_ & (buckets_.size() - 1)];
    std::size_t best = b.size();
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (b[i].time / width_ > tick_) continue;  // a later lap of the ring
      if (best == b.size() || b[i].time < b[best].time ||
          (b[i].time == b[best].time && b[i].payload < b[best].payload))
        best = i;
    }
    if (best == b.size()) return false;
    time = b[best].time;
    payload = b[best].payload;
    b[best] = b.back();
    b.pop_back();
    --size_;
    if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2)
      resize(buckets_.size() / 2);
    return true;
  }

  void resize(std::size_t nbuckets) {
    std::vector<Entry> all;
    all.reserve(size_);
    for (auto& b : buckets_) {
      all.insert(all.end(), b.begin(), b.end());
      b.clear();
    }
    // Re-estimate the day width from the population: the average separation
    // of a sorted sample, aiming at ~1 entry per bucket per day. Only the
    // sample is sorted, not the queue.
    if (all.size() >= 2) {
      std::vector<std::uint64_t> sample;
      const std::size_t step = std::max<std::size_t>(1, all.size() / 64);
      for (std::size_t i = 0; i < all.size(); i += step)
        sample.push_back(all[i].time);
      std::sort(sample.begin(), sample.end());
      if (sample.size() >= 2 && sample.back() > sample.front())
        width_ = std::max<std::uint64_t>(
            1, 2 * (sample.back() - sample.front()) / (sample.size() - 1));
    }
    const std::uint64_t cursor_time = tick_ * width_;
    buckets_.assign(std::max(nbuckets, kMinBuckets), {});
    tick_ = ~std::uint64_t{0};
    for (const Entry& e : all) {
      tick_ = std::min(tick_, e.time / width_);
      bucket_for(e.time).push_back(e);
    }
    if (all.empty()) tick_ = cursor_time / width_;
  }

  std::vector<std::vector<Entry>> buckets_;
  std::uint64_t width_;
  std::uint64_t tick_ = 0;  // current day: entries with time/width_ <= tick_
                            // are due
  std::size_t size_ = 0;
};

}  // namespace ccref
