// Byte-buffer codec for serializing protocol states.
//
// Global states (process control state + variable stores + channel contents
// + buffers) are flattened into byte vectors before insertion into the
// model checker's visited set. Encoding is canonical: equal states encode to
// equal byte strings.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

#include "support/contracts.hpp"

namespace ccref {

/// One component boundary inside an encoded state: the byte offset one past
/// the component's last byte, plus the dictionary class the component belongs
/// to (COLLAPSE compression interns components per class — e.g. all remote
/// machines share one dictionary — see verify/collapse.hpp).
struct ComponentMark {
  std::uint32_t end;
  std::uint8_t cls;

  friend bool operator==(const ComponentMark&, const ComponentMark&) = default;
};

class ByteSink {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<std::byte>(v)); }

  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }

  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }

  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }

  /// Append a pre-encoded byte run (e.g. composing a prefixed encoding from
  /// an already-encoded state).
  void raw(std::span<const std::byte> data) {
    buf_.insert(buf_.end(), data.begin(), data.end());
  }

  /// Append a pre-encoded run together with its component marks, shifted to
  /// this sink's coordinates (the liveness engine prefixes system encodings
  /// with the automaton state and must carry the boundaries across).
  void raw(std::span<const std::byte> data,
           std::span<const ComponentMark> data_marks) {
    const auto base = static_cast<std::uint32_t>(buf_.size());
    raw(data);
    if (marks_)
      for (const ComponentMark& m : data_marks)
        marks_->push_back({base + m.end, m.cls});
  }

  /// Close the current component: record the write position as a boundary of
  /// dictionary class `cls`. A plain ByteSink collects no marks, so state
  /// encoders call this unconditionally at no cost; a ComponentSink records
  /// the boundary for COLLAPSE compression.
  void boundary(std::uint8_t cls = 0) {
    if (marks_) marks_->push_back({static_cast<std::uint32_t>(buf_.size()), cls});
  }

  /// LEB128-style variable-length encoding; most state fields are tiny.
  void varint(std::uint64_t v) {
    while (v >= 0x80) {
      u8(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    u8(static_cast<std::uint8_t>(v));
  }

  [[nodiscard]] std::span<const std::byte> bytes() const { return buf_; }
  [[nodiscard]] std::vector<std::byte> take() { return std::move(buf_); }
  [[nodiscard]] std::size_t size() const { return buf_.size(); }
  void clear() {
    buf_.clear();
    if (marks_) marks_->clear();  // marks index into the cleared buffer
  }

 protected:
  std::vector<ComponentMark>* marks_ = nullptr;  // null: boundaries ignored

 private:
  std::vector<std::byte> buf_;
};

/// ByteSink that records the component boundaries emitted by a state
/// encoder. The checkers feed bytes() + marks() to the visited set; under
/// CompressionMode::Collapse each [previous mark, mark.end) slice is interned
/// in its class dictionary and only the index tuple is pooled.
class ComponentSink : public ByteSink {
 public:
  ComponentSink() { marks_ = &marks_store_; }

  [[nodiscard]] std::span<const ComponentMark> marks() const {
    return marks_store_;
  }

 private:
  std::vector<ComponentMark> marks_store_;
};

class ByteSource {
 public:
  explicit ByteSource(std::span<const std::byte> data) : data_(data) {}

  std::uint8_t u8() {
    CCREF_REQUIRE(pos_ < data_.size());
    return static_cast<std::uint8_t>(data_[pos_++]);
  }

  std::uint16_t u16() {
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }

  std::uint32_t u32() {
    std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }

  std::uint64_t u64() {
    std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }

  std::uint64_t varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
      std::uint8_t b = u8();
      v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
      if (!(b & 0x80)) return v;
      shift += 7;
      CCREF_ASSERT(shift < 64);
    }
  }

  [[nodiscard]] bool exhausted() const { return pos_ == data_.size(); }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

}  // namespace ccref
