// Minimal fixed-size thread pool.
//
// The parallel checker submits one long-running worker loop per job; other
// subsystems can reuse the pool for fire-and-forget tasks. Deliberately
// small: a mutex-guarded task queue and a condition variable — the pool is
// not on anyone's hot path (workers coordinate through their own lock-free
// counters once running).
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccref {

/// Processor-level pause for spin loops: keeps the core from speculating
/// through the loop and frees pipeline resources for the sibling
/// hyperthread that is doing the work we are waiting for.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#elif defined(__aarch64__)
  asm volatile("yield" ::: "memory");
#else
  // No portable pause instruction; an empty asm barrier at least stops the
  // compiler from collapsing the spin.
  asm volatile("" ::: "memory");
#endif
}

/// Bounded exponential backoff for contended atomic loops: short pause
/// bursts first (the common case resolves in nanoseconds — a publisher
/// finishing a store), then yields to the scheduler so a descheduled
/// publisher can run. Never sleeps: wakeup latency stays bounded by a
/// scheduling quantum, which the parallel checker's termination detector
/// relies on.
class SpinBackoff {
 public:
  void pause() {
    if (round_ < kSpinRounds) {
      for (int i = 0; i < (1 << (round_ < 5 ? round_ : 5)); ++i) cpu_relax();
      ++round_;
    } else {
      std::this_thread::yield();
    }
  }
  void reset() { round_ = 0; }

 private:
  static constexpr int kSpinRounds = 16;
  int round_ = 0;
};

/// Tiny test-and-set spinlock for short, rare critical sections (e.g. the
/// COLLAPSE dictionary miss path, which runs once per distinct component
/// value). Not fair, not reentrant; hot paths must stay lock-free.
class SpinLock {
 public:
  void lock() {
    SpinBackoff backoff;
    while (flag_.test_and_set(std::memory_order_acquire)) backoff.pause();
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a sane floor.
  [[nodiscard]] static unsigned default_concurrency() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++running_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
        if (tasks_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  unsigned running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccref
