// Minimal fixed-size thread pool.
//
// The parallel checker submits one long-running worker loop per job; other
// subsystems can reuse the pool for fire-and-forget tasks. Deliberately
// small: a mutex-guarded task queue and a condition variable — the pool is
// not on anyone's hot path (workers coordinate through their own lock-free
// counters once running).
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ccref {

class ThreadPool {
 public:
  explicit ThreadPool(unsigned threads) {
    if (threads == 0) threads = 1;
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  void submit(std::function<void()> task) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      tasks_.push_back(std::move(task));
    }
    cv_.notify_one();
  }

  /// Block until every submitted task has finished.
  void wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return tasks_.empty() && running_ == 0; });
  }

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// std::thread::hardware_concurrency with a sane floor.
  [[nodiscard]] static unsigned default_concurrency() {
    unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : n;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
        if (tasks_.empty()) return;  // stopping_ and drained
        task = std::move(tasks_.front());
        tasks_.pop_front();
        ++running_;
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        --running_;
        if (tasks_.empty() && running_ == 0) idle_cv_.notify_all();
      }
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<std::function<void()>> tasks_;
  unsigned running_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ccref
