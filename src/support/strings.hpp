// Small string helpers (no std::format in GCC 12's libstdc++).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ccref {

/// printf-style formatting into std::string.
[[nodiscard]] std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Split on a delimiter; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split(std::string_view s,
                                                  char delim);

/// Strip ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// Human-readable byte count ("1.5 MB").
[[nodiscard]] std::string human_bytes(std::size_t n);

/// Join pieces with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& parts,
                               std::string_view sep);

}  // namespace ccref
