// End-to-end LTL checking driver: parse -> negate -> NNF -> Büchi ->
// bind atoms -> fair lasso search (verify/liveness.hpp).
//
// compile() validates a user-supplied formula against a concrete system and
// reports errors as data (the examples print them); check_ltl() is the
// one-call form for known-good formulas (benches, tests) and hard-fails on
// a malformed property.
//
// Symmetry soundness: the quotient construction stores one representative
// per remote-permutation orbit, which preserves LTL verdicts only when
// every atom is invariant under those permutations. Atoms naming a concrete
// remote (granted(1), requested(0), remote(2,V)) break this, so check_ltl
// downgrades to SymmetryMode::Off for such formulas and records the
// downgrade in LivenessResult::note rather than returning a wrong verdict.
// (Fairness constraints are never orbit-invariant — per-process marks live
// in per-representative frames — so the engine itself downgrades any
// fairness-constrained search the same way; see liveness.hpp.)
#pragma once

#include <string_view>

#include "ltl/ap.hpp"
#include "ltl/buchi.hpp"
#include "ltl/parser.hpp"
#include "verify/liveness.hpp"

namespace ccref::ltl {

template <class Sys>
struct CompiledProperty {
  std::string error;  // non-empty => the rest is unusable
  std::string text;   // the property as given
  Buchi aut;          // automaton for the *negated* property
  std::vector<ApFn<typename Sys::State>> atoms;
  bool symmetric = true;   // all atoms remote-permutation invariant
  bool next_free = true;   // no X operator => stutter-invariant => POR-safe
  std::uint64_t visible_remotes = 0;  // POR visibility mask (ap.hpp)
};

template <class Sys>
[[nodiscard]] CompiledProperty<Sys> compile(const Sys& sys,
                                            std::string_view text) {
  CompiledProperty<Sys> out;
  out.text = std::string(text);
  FormulaFactory factory;
  ParseResult parsed = parse(text, factory);
  if (!parsed.error.empty()) {
    out.error = std::move(parsed.error);
    return out;
  }
  if (parsed.atoms.size() > 64) {
    out.error = "too many distinct atoms (limit 64)";
    return out;
  }
  auto bound = bind_atoms(sys, parsed.atoms);
  if (!bound.error.empty()) {
    out.error = std::move(bound.error);
    return out;
  }
  const Formula* negated = factory.to_nnf(parsed.formula, /*negated=*/true);
  out.aut = translate(negated, parsed.atoms.size());
  out.atoms = std::move(bound.eval);
  out.symmetric = bound.symmetric;
  out.next_free = next_free(parsed.formula);
  out.visible_remotes = bound.visible_remotes;
  return out;
}

template <class Sys>
[[nodiscard]] verify::LivenessResult check_ltl(
    const Sys& sys, std::string_view text,
    const verify::LivenessOptions& opts = {}) {
  auto prop = compile(sys, text);
  CCREF_REQUIRE_MSG(prop.error.empty(),
                    "check_ltl: malformed property (validate user input "
                    "with ltl::compile first)");
  verify::LivenessOptions run = opts;
  verify::LivenessResult result;
  if (run.symmetry == verify::SymmetryMode::Canonical && !prop.symmetric) {
    run.symmetry = verify::SymmetryMode::Off;
    result.note =
        "symmetry downgraded to off: the formula names concrete remotes, so "
        "the orbit quotient is unsound for it";
  }
  if (run.por == verify::PorMode::Ample && !prop.next_free) {
    run.por = verify::PorMode::Off;
    const char* msg =
        "por downgraded to off: the formula contains X (next), which the "
        "ample-set reduction does not preserve";
    result.note =
        result.note.empty() ? msg : result.note + std::string("; ") + msg;
  } else {
    run.por_visible = prop.visible_remotes;
  }
  std::string note = std::move(result.note);
  result = verify::find_accepting_lasso(sys, prop.aut, prop.atoms, run);
  if (!note.empty())
    result.note = result.note.empty() ? note : note + "; " + result.note;
  return result;
}

}  // namespace ccref::ltl
