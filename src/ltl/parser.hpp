// Recursive-descent parser for the LTL surface syntax.
//
// Grammar (precedence loosest to tightest; U/R are right-associative, as is
// ->):
//
//   formula := or_expr ( '->' formula )?
//   or_expr := and_expr ( '||' and_expr )*
//   and_expr := until_expr ( '&&' until_expr )*
//   until_expr := unary ( ('U' | 'R') until_expr )?
//   unary := ('!' | 'X' | 'F' | 'G') unary | primary
//   primary := 'true' | 'false' | '(' formula ')' | atom
//   atom := ident ( '(' arg (',' arg)* ')' )?     arg := ident | integer
//
// `U R X F G` are reserved operator names; atoms are any other identifier,
// optionally applied to arguments (`granted(1)`, `home(GRANT)`,
// `remote(0,V)`). Arguments are kept as raw strings — control-state names
// like `F` are fine inside parentheses — and resolved against a concrete
// system by ap.hpp.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "ltl/formula.hpp"

namespace ccref::ltl {

struct ParseResult {
  const Formula* formula = nullptr;  // null iff !error.empty()
  std::vector<Atom> atoms;           // AtomRef indices point here
  std::string error;                 // "" on success
};

/// Parse `text` into `factory`-owned nodes. The result is surface syntax
/// (Not/F/G still present as written); feed through FormulaFactory::to_nnf
/// before the Büchi translation.
[[nodiscard]] ParseResult parse(std::string_view text, FormulaFactory& factory);

}  // namespace ccref::ltl
