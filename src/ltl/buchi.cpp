#include "ltl/buchi.hpp"

#include <algorithm>
#include <set>
#include <utility>

namespace ccref::ltl {

namespace {

using FSet = std::set<const Formula*, FormulaById>;

struct Node {
  std::uint32_t id = 0;
  std::vector<std::uint32_t> incoming;
  FSet neu;  // obligations not yet processed ("New" in GPVW)
  FSet old;  // processed obligations; literals here label the state
  FSet next; // obligations deferred to the successor
};

struct Translator {
  // Finalized tableau nodes; ids are 1..done.size() in push order (0 is the
  // initial pseudo-state), so done[id - 1] has that id.
  std::vector<Node> done;
  std::uint32_t next_id = 1;

  static bool is_literal(const Formula* f) {
    return f->op == Op::AtomRef || f->op == Op::Not;
  }

  static bool contradicts(const FSet& old, const Formula* lit) {
    if (lit->op == Op::Not) return old.count(lit->lhs) > 0;
    for (const Formula* g : old)
      if (g->op == Op::Not && g->lhs == lit) return true;
    return false;
  }

  static void add_new(Node& n, const Formula* g) {
    if (!n.old.count(g)) n.neu.insert(g);
  }

  void expand(Node q) {
    if (q.neu.empty()) {
      for (auto& r : done) {
        if (r.old == q.old && r.next == q.next) {
          r.incoming.insert(r.incoming.end(), q.incoming.begin(),
                            q.incoming.end());
          return;
        }
      }
      q.id = next_id++;
      Node succ;
      succ.incoming = {q.id};
      succ.neu = q.next;
      done.push_back(std::move(q));
      expand(std::move(succ));
      return;
    }
    const Formula* f = *q.neu.begin();
    q.neu.erase(q.neu.begin());
    switch (f->op) {
      case Op::False:
        return;  // inconsistent node: discard
      case Op::True:
        expand(std::move(q));
        return;
      case Op::AtomRef:
      case Op::Not:
        if (contradicts(q.old, f)) return;
        q.old.insert(f);
        expand(std::move(q));
        return;
      case Op::And:
        add_new(q, f->lhs);
        add_new(q, f->rhs);
        q.old.insert(f);
        expand(std::move(q));
        return;
      case Op::Or: {
        Node q2 = q;
        add_new(q, f->lhs);
        q.old.insert(f);
        expand(std::move(q));
        add_new(q2, f->rhs);
        q2.old.insert(f);
        expand(std::move(q2));
        return;
      }
      case Op::Next:
        q.old.insert(f);
        q.next.insert(f->lhs);
        expand(std::move(q));
        return;
      case Op::Until: {
        // a U b  =  b ∨ (a ∧ X(a U b))
        Node q2 = q;
        add_new(q, f->lhs);
        q.next.insert(f);
        q.old.insert(f);
        expand(std::move(q));
        add_new(q2, f->rhs);
        q2.old.insert(f);
        expand(std::move(q2));
        return;
      }
      case Op::Release: {
        // a R b  =  (a ∧ b) ∨ (b ∧ X(a R b))
        Node q2 = q;
        add_new(q, f->lhs);
        add_new(q, f->rhs);
        q.old.insert(f);
        expand(std::move(q));
        add_new(q2, f->rhs);
        q2.next.insert(f);
        q2.old.insert(f);
        expand(std::move(q2));
        return;
      }
    }
  }
};

void collect_untils(const Formula* f, std::vector<const Formula*>& out) {
  if (!f) return;
  collect_untils(f->lhs, out);
  collect_untils(f->rhs, out);
  if (f->op == Op::Until &&
      std::find(out.begin(), out.end(), f) == out.end())
    out.push_back(f);
}

}  // namespace

Buchi translate(const Formula* nnf, std::size_t num_atoms) {
  CCREF_REQUIRE(num_atoms <= 64);
  Translator tr;
  {
    Node start;
    start.incoming = {0};
    start.neu.insert(nnf);
    tr.expand(std::move(start));
  }

  std::vector<const Formula*> untils;
  collect_untils(nnf, untils);
  CCREF_REQUIRE(untils.size() <= 32);

  Buchi aut;
  aut.num_atoms = static_cast<std::uint32_t>(num_atoms);
  aut.num_acc = static_cast<std::uint32_t>(untils.size());
  const std::size_t n = tr.done.size() + 1;
  aut.pos.assign(n, 0);
  aut.neg.assign(n, 0);
  aut.acc.assign(n, aut.all_acc_mask());  // index 0: initial, never on cycles
  aut.succ.assign(n, {});

  for (const Node& node : tr.done) {
    std::uint32_t q = node.id;
    std::uint32_t acc = 0;
    for (std::size_t k = 0; k < untils.size(); ++k)
      if (!node.old.count(untils[k]) || node.old.count(untils[k]->rhs))
        acc |= 1u << k;
    aut.acc[q] = acc;
    for (const Formula* g : node.old) {
      if (g->op == Op::AtomRef)
        aut.pos[q] |= 1ull << g->atom;
      else if (g->op == Op::Not)
        aut.neg[q] |= 1ull << g->lhs->atom;
    }
    for (std::uint32_t from : node.incoming) aut.succ[from].push_back(q);
  }
  for (auto& edges : aut.succ) {
    std::sort(edges.begin(), edges.end());
    edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  }
  return aut;
}

}  // namespace ccref::ltl
