// Atomic-proposition binding: from parsed atom spellings to predicates over
// concrete system states and transition labels.
//
// LTL letters here are *state-event* pairs: step i of a run contributes the
// valuation ν(s_{i-1} -> s_i) evaluated on the transition's source-side
// successor state s_i and its Label l_i. State predicates (control states,
// buffer occupancy, outstanding requests) read the state; event predicates
// (completion, grants, nacks) read the label — the paper's progress notions
// are edge properties ("completes a rendezvous"), so both are needed.
//
// Vocabulary (same names at both semantics; resolution differs):
//   completion        a rendezvous completed on this step           [event]
//   granted(i)        the step granted remote i's request (§6)      [event]
//   granted           the step granted some remote's request        [event]
//   nacked            the step sent a nack                          [event]
//   requested(i)      remote i has an outstanding request           [state]
//   requested         some remote has an outstanding request        [state]
//   home(NAME)        home control state is NAME                    [state]
//   remote(i,NAME)    remote i's control state is NAME              [state]
//   buffer_ge(c)      home request-buffer occupancy >= c            [state]
//
// Each bound atom carries a symmetry verdict: atoms naming a concrete
// remote index (granted(i), requested(i), remote(i,NAME)) are *not*
// invariant under remote permutation, so the liveness engine must not
// explore the symmetry-reduced quotient for formulas using them
// (check.hpp downgrades and says so).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ltl/formula.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"

namespace ccref::ltl {

template <class State>
using ApFn = std::function<bool(const State&, const sem::Label&)>;

template <class State>
struct BoundAtoms {
  std::vector<ApFn<State>> eval;  // one predicate per parsed atom
  bool symmetric = true;          // every atom remote-permutation invariant
  /// Bit i set = some atom's truth can change when remote i moves (its
  /// machine, its channels, or a label its steps can carry). The partial-
  /// order reduction must not pick an ample set for a visible remote
  /// (condition C2); home-only atoms (home(S), buffer_ge(c)) contribute
  /// nothing because ample candidates never touch the home machine.
  std::uint64_t visible_remotes = 0;
  std::string error;              // non-empty => binding failed
};

[[nodiscard]] BoundAtoms<sem::RvState> bind_atoms(
    const sem::RendezvousSystem& sys, const std::vector<Atom>& atoms);

[[nodiscard]] BoundAtoms<runtime::AsyncState> bind_atoms(
    const runtime::AsyncSystem& sys, const std::vector<Atom>& atoms);

}  // namespace ccref::ltl
