#include "ltl/parser.hpp"

#include <cctype>

#include "support/strings.hpp"

namespace ccref::ltl {

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  FormulaFactory& factory;
  std::vector<Atom>& atoms;
  std::string error;

  void skip_ws() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos])))
      ++pos;
  }

  [[nodiscard]] bool at_end() {
    skip_ws();
    return pos >= text.size();
  }

  [[nodiscard]] bool eat(std::string_view tok) {
    skip_ws();
    if (text.substr(pos, tok.size()) != tok) return false;
    // An identifier-like token must not be a prefix of a longer identifier
    // (`U` vs `Unlocked`, `true` vs `truely`).
    if (std::isalpha(static_cast<unsigned char>(tok.front()))) {
      std::size_t after = pos + tok.size();
      if (after < text.size() &&
          (std::isalnum(static_cast<unsigned char>(text[after])) ||
           text[after] == '_'))
        return false;
    }
    pos += tok.size();
    return true;
  }

  [[nodiscard]] std::string ident() {
    skip_ws();
    std::size_t start = pos;
    while (pos < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[pos])) ||
            text[pos] == '_'))
      ++pos;
    return std::string(text.substr(start, pos - start));
  }

  const Formula* fail(std::string msg) {
    if (error.empty())
      error = strf("LTL parse error at offset %zu: %s", pos, msg.c_str());
    return nullptr;
  }

  std::uint32_t intern_atom(Atom a) {
    for (std::uint32_t i = 0; i < atoms.size(); ++i)
      if (atoms[i] == a) return i;
    atoms.push_back(std::move(a));
    return static_cast<std::uint32_t>(atoms.size() - 1);
  }

  const Formula* formula() {
    const Formula* lhs = or_expr();
    if (!lhs) return nullptr;
    if (eat("->")) {
      const Formula* rhs = formula();
      if (!rhs) return nullptr;
      return factory.implies(lhs, rhs);
    }
    return lhs;
  }

  const Formula* or_expr() {
    const Formula* lhs = and_expr();
    if (!lhs) return nullptr;
    while (eat("||") || eat("|")) {
      const Formula* rhs = and_expr();
      if (!rhs) return nullptr;
      lhs = factory.disj(lhs, rhs);
    }
    return lhs;
  }

  const Formula* and_expr() {
    const Formula* lhs = until_expr();
    if (!lhs) return nullptr;
    while (eat("&&") || eat("&")) {
      const Formula* rhs = until_expr();
      if (!rhs) return nullptr;
      lhs = factory.conj(lhs, rhs);
    }
    return lhs;
  }

  const Formula* until_expr() {
    const Formula* lhs = unary();
    if (!lhs) return nullptr;
    if (eat("U")) {
      const Formula* rhs = until_expr();
      if (!rhs) return nullptr;
      return factory.until(lhs, rhs);
    }
    if (eat("R")) {
      const Formula* rhs = until_expr();
      if (!rhs) return nullptr;
      return factory.release(lhs, rhs);
    }
    return lhs;
  }

  const Formula* unary() {
    if (eat("!")) {
      const Formula* a = unary();
      return a ? factory.negate(a) : nullptr;
    }
    if (eat("X")) {
      const Formula* a = unary();
      return a ? factory.next(a) : nullptr;
    }
    if (eat("F")) {
      const Formula* a = unary();
      return a ? factory.finally_(a) : nullptr;
    }
    if (eat("G")) {
      const Formula* a = unary();
      return a ? factory.globally(a) : nullptr;
    }
    return primary();
  }

  const Formula* primary() {
    if (eat("true")) return factory.top();
    if (eat("false")) return factory.bottom();
    if (eat("(")) {
      const Formula* a = formula();
      if (!a) return nullptr;
      if (!eat(")")) return fail("expected ')'");
      return a;
    }
    skip_ws();
    std::string name = ident();
    if (name.empty()) return fail("expected an atom, 'true', 'false' or '('");
    Atom a;
    a.name = name;
    a.spelling = name;
    if (eat("(")) {
      a.spelling += '(';
      for (;;) {
        std::string arg = ident();
        if (arg.empty()) return fail("expected an atom argument");
        if (!a.args.empty()) a.spelling += ',';
        a.spelling += arg;
        a.args.push_back(std::move(arg));
        if (eat(",")) continue;
        break;
      }
      if (!eat(")")) return fail("expected ')' after atom arguments");
      a.spelling += ')';
    }
    return factory.atom(intern_atom(std::move(a)));
  }
};

}  // namespace

ParseResult parse(std::string_view text, FormulaFactory& factory) {
  ParseResult result;
  Parser p{text, 0, factory, result.atoms, {}};
  const Formula* f = p.formula();
  if (f && !p.at_end()) {
    f = nullptr;
    p.error = strf("LTL parse error: trailing input at offset %zu", p.pos);
  }
  if (!f) {
    result.error = p.error.empty() ? "LTL parse error" : p.error;
    result.atoms.clear();
    return result;
  }
  result.formula = f;
  return result;
}

}  // namespace ccref::ltl
