#include "ltl/formula.hpp"

namespace ccref::ltl {

namespace {

void render(const Formula* f, const std::vector<Atom>& atoms,
            std::string& out) {
  auto paren = [&](const Formula* g) {
    bool simple = g->op == Op::True || g->op == Op::False ||
                  g->op == Op::AtomRef || g->op == Op::Not;
    if (!simple) out += '(';
    render(g, atoms, out);
    if (!simple) out += ')';
  };
  switch (f->op) {
    case Op::True: out += "true"; return;
    case Op::False: out += "false"; return;
    case Op::AtomRef: out += atoms[f->atom].spelling; return;
    case Op::Not:
      out += '!';
      paren(f->lhs);
      return;
    case Op::And:
      paren(f->lhs);
      out += " && ";
      paren(f->rhs);
      return;
    case Op::Or:
      paren(f->lhs);
      out += " || ";
      paren(f->rhs);
      return;
    case Op::Next:
      out += "X ";
      paren(f->lhs);
      return;
    case Op::Until:
      if (f->lhs->op == Op::True) {  // F sugar
        out += "F ";
        paren(f->rhs);
        return;
      }
      paren(f->lhs);
      out += " U ";
      paren(f->rhs);
      return;
    case Op::Release:
      if (f->lhs->op == Op::False) {  // G sugar
        out += "G ";
        paren(f->rhs);
        return;
      }
      paren(f->lhs);
      out += " R ";
      paren(f->rhs);
      return;
  }
}

}  // namespace

std::string FormulaFactory::to_string(const Formula* f,
                                      const std::vector<Atom>& atoms) const {
  std::string out;
  render(f, atoms, out);
  return out;
}

}  // namespace ccref::ltl
