#include "ltl/ap.hpp"

#include <charconv>

#include "support/strings.hpp"

namespace ccref::ltl {

namespace {

bool parse_int(const std::string& s, int& out) {
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
  return ec == std::errc() && ptr == s.data() + s.size();
}

std::string arity_error(const Atom& a, const char* expected) {
  return strf("atom '%s': expected %s", a.spelling.c_str(), expected);
}

/// Bind the atoms whose evaluation only touches the Label (identical at both
/// semantics). Returns true when handled.
template <class State>
bool bind_event_atom(const Atom& a, BoundAtoms<State>& out,
                     std::string& error) {
  if (a.name == "completion") {
    if (!a.args.empty()) {
      error = arity_error(a, "no arguments");
      return true;
    }
    // Any remote's own steps can complete a rendezvous (C3 answers, elided
    // acks), so every remote is POR-visible to this atom.
    out.visible_remotes = ~0ull;
    out.eval.push_back([](const State&, const sem::Label& l) {
      return l.completes_rendezvous;
    });
    return true;
  }
  if (a.name == "granted") {
    if (a.args.empty()) {
      out.visible_remotes = ~0ull;
      out.eval.push_back([](const State&, const sem::Label& l) {
        return l.completes_rendezvous && l.granted_to >= 0;
      });
      return true;
    }
    int i = -1;
    if (a.args.size() != 1 || !parse_int(a.args[0], i)) {
      error = arity_error(a, "one integer remote index");
      return true;
    }
    out.symmetric = false;
    // Only remote i's own steps can carry granted_to == i among ample
    // candidates (foreign candidates grant to themselves or to the home).
    if (i >= 0 && i < 64)
      out.visible_remotes |= 1ull << i;
    else
      out.visible_remotes = ~0ull;
    out.eval.push_back([i](const State&, const sem::Label& l) {
      return l.completes_rendezvous && l.granted_to == i;
    });
    return true;
  }
  if (a.name == "nacked") {
    if (!a.args.empty()) {
      error = arity_error(a, "no arguments");
      return true;
    }
    // A passive remote's C3 step can nack, so every remote is visible.
    out.visible_remotes = ~0ull;
    out.eval.push_back(
        [](const State&, const sem::Label& l) { return l.sent_nack > 0; });
    return true;
  }
  return false;
}

/// Validate a remote index argument against the system size.
bool check_remote_index(const Atom& a, int i, int n, std::string& error) {
  if (i < 0 || i >= n) {
    error = strf("atom '%s': remote index %d out of range (n=%d)",
                 a.spelling.c_str(), i, n);
    return false;
  }
  return true;
}

}  // namespace

BoundAtoms<sem::RvState> bind_atoms(const sem::RendezvousSystem& sys,
                                    const std::vector<Atom>& atoms) {
  BoundAtoms<sem::RvState> out;
  const ir::Protocol& p = sys.protocol();
  const int n = sys.num_remotes();
  for (const Atom& a : atoms) {
    std::string error;
    if (bind_event_atom(a, out, error)) {
      if (!error.empty()) {
        out.error = std::move(error);
        return out;
      }
      continue;
    }
    if (a.name == "requested") {
      // A rendezvous-level remote "has an outstanding request" while it sits
      // in an active communication state (its single output guard is the
      // pending request; §2.4).
      auto active = [&p](const sem::RvState& s, int i) {
        return ir::Process::is_active_state(
            p.remote.state(s.remotes[i].state));
      };
      if (a.args.empty()) {
        out.visible_remotes = ~0ull;
        out.eval.push_back([active, n](const sem::RvState& s,
                                       const sem::Label&) {
          for (int i = 0; i < n; ++i)
            if (active(s, i)) return true;
          return false;
        });
        continue;
      }
      int i = -1;
      if (a.args.size() != 1 || !parse_int(a.args[0], i)) {
        out.error = arity_error(a, "one integer remote index");
        return out;
      }
      if (!check_remote_index(a, i, n, out.error)) return out;
      out.symmetric = false;
      out.visible_remotes |= 1ull << i;
      out.eval.push_back([active, i](const sem::RvState& s,
                                     const sem::Label&) {
        return active(s, i);
      });
      continue;
    }
    if (a.name == "home") {
      ir::StateId sid = a.args.size() == 1 ? p.home.find_state(a.args[0])
                                           : ir::kNoState;
      if (sid == ir::kNoState) {
        out.error = arity_error(a, "one home control-state name");
        return out;
      }
      out.eval.push_back([sid](const sem::RvState& s, const sem::Label&) {
        return s.home.state == sid;
      });
      continue;
    }
    if (a.name == "remote") {
      int i = -1;
      ir::StateId sid = a.args.size() == 2 && parse_int(a.args[0], i)
                            ? p.remote.find_state(a.args[1])
                            : ir::kNoState;
      if (sid == ir::kNoState) {
        out.error = arity_error(a, "(remote index, control-state name)");
        return out;
      }
      if (!check_remote_index(a, i, n, out.error)) return out;
      out.symmetric = false;
      out.visible_remotes |= 1ull << i;
      out.eval.push_back([i, sid](const sem::RvState& s, const sem::Label&) {
        return s.remotes[i].state == sid;
      });
      continue;
    }
    if (a.name == "buffer_ge") {
      int c = -1;
      if (a.args.size() != 1 || !parse_int(a.args[0], c)) {
        out.error = arity_error(a, "one integer occupancy");
        return out;
      }
      // The rendezvous semantics has no buffers; occupancy is always 0.
      out.eval.push_back([c](const sem::RvState&, const sem::Label&) {
        return 0 >= c;
      });
      continue;
    }
    out.error = strf("unknown atom '%s'", a.spelling.c_str());
    return out;
  }
  return out;
}

BoundAtoms<runtime::AsyncState> bind_atoms(const runtime::AsyncSystem& sys,
                                           const std::vector<Atom>& atoms) {
  BoundAtoms<runtime::AsyncState> out;
  const ir::Protocol& p = sys.protocol();
  const int n = sys.num_remotes();
  for (const Atom& a : atoms) {
    std::string error;
    if (bind_event_atom(a, out, error)) {
      if (!error.empty()) {
        out.error = std::move(error);
        return out;
      }
      continue;
    }
    if (a.name == "requested") {
      // §3's transient flag: set from the active send until the matching
      // ack/nack/reply resolves the request.
      if (a.args.empty()) {
        out.visible_remotes = ~0ull;
        out.eval.push_back([n](const runtime::AsyncState& s,
                               const sem::Label&) {
          for (int i = 0; i < n; ++i)
            if (s.remotes[i].transient) return true;
          return false;
        });
        continue;
      }
      int i = -1;
      if (a.args.size() != 1 || !parse_int(a.args[0], i)) {
        out.error = arity_error(a, "one integer remote index");
        return out;
      }
      if (!check_remote_index(a, i, n, out.error)) return out;
      out.symmetric = false;
      out.visible_remotes |= 1ull << i;
      out.eval.push_back([i](const runtime::AsyncState& s,
                             const sem::Label&) {
        return s.remotes[i].transient;
      });
      continue;
    }
    if (a.name == "home") {
      ir::StateId sid = a.args.size() == 1 ? p.home.find_state(a.args[0])
                                           : ir::kNoState;
      if (sid == ir::kNoState) {
        out.error = arity_error(a, "one home control-state name");
        return out;
      }
      // HomeMachine::state holds the origin state while transient, which is
      // exactly the §4 abstraction's reading of transient states.
      out.eval.push_back([sid](const runtime::AsyncState& s,
                               const sem::Label&) {
        return s.home.state == sid;
      });
      continue;
    }
    if (a.name == "remote") {
      int i = -1;
      ir::StateId sid = a.args.size() == 2 && parse_int(a.args[0], i)
                            ? p.remote.find_state(a.args[1])
                            : ir::kNoState;
      if (sid == ir::kNoState) {
        out.error = arity_error(a, "(remote index, control-state name)");
        return out;
      }
      if (!check_remote_index(a, i, n, out.error)) return out;
      out.symmetric = false;
      out.visible_remotes |= 1ull << i;
      out.eval.push_back([i, sid](const runtime::AsyncState& s,
                                  const sem::Label&) {
        return s.remotes[i].state == sid;
      });
      continue;
    }
    if (a.name == "buffer_ge") {
      int c = -1;
      if (a.args.size() != 1 || !parse_int(a.args[0], c)) {
        out.error = arity_error(a, "one integer occupancy");
        return out;
      }
      out.eval.push_back([c](const runtime::AsyncState& s,
                             const sem::Label&) {
        return static_cast<int>(s.home.buffer.size()) >= c;
      });
      continue;
    }
    out.error = strf("unknown atom '%s'", a.spelling.c_str());
    return out;
  }
  return out;
}

}  // namespace ccref::ltl
