// LTL abstract syntax over atomic propositions, with hash-consing and
// negation-normal-form rewriting.
//
// The liveness layer (verify/liveness.hpp) checks a property φ by searching
// the product of the system with a Büchi automaton for ¬φ (buchi.hpp). That
// tableau construction wants its input in *negation normal form* — negation
// only on atoms, temporal operators from the {X, U, R} core — so the factory
// exposes exactly that rewriting. Surface sugar (F, G, ->) is desugared on
// construction:
//
//   F a  ≡  true U a        G a  ≡  false R a        a -> b  ≡  ¬a ∨ b
//
// Formulas are hash-consed: structurally equal subformulas share one node,
// so the tableau's subformula sets are plain id-ordered sets and the §2.5 /
// §6 properties (G F completion, G(requested(i) -> F granted(i))) stay a
// handful of nodes.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/contracts.hpp"

namespace ccref::ltl {

/// An atomic proposition as spelled in the formula: a name plus optional
/// arguments (`completion`, `granted(1)`, `home(GRANT)`, `remote(0,V)`).
/// The parser only collects spellings; binding names to predicates over
/// concrete system states happens per-system in ap.hpp.
struct Atom {
  std::string name;
  std::vector<std::string> args;
  std::string spelling;  // canonical text, used for error messages

  friend bool operator==(const Atom&, const Atom&) = default;
};

enum class Op : std::uint8_t {
  True,
  False,
  AtomRef,  // positive literal, `atom` indexes the parse's atom table
  Not,      // arbitrary until to_nnf(); only over AtomRef afterwards
  And,
  Or,
  Next,
  Until,
  Release,
};

struct Formula {
  Op op;
  std::uint32_t id;     // creation index; stable total order for set keys
  std::uint32_t atom;   // AtomRef only
  const Formula* lhs;   // unary operand, or left binary operand
  const Formula* rhs;   // right binary operand
};

/// Next-free formulas are stutter-invariant (Peled & Wilke), which is what
/// the partial-order reduction preserves: check.hpp only engages POR when
/// the property (equivalently, its negation) contains no X operator.
[[nodiscard]] inline bool next_free(const Formula* f) {
  if (!f) return true;
  if (f->op == Op::Next) return false;
  return next_free(f->lhs) && next_free(f->rhs);
}

/// Creation-order comparator: gives tableau sets a deterministic iteration
/// order independent of allocator addresses.
struct FormulaById {
  bool operator()(const Formula* a, const Formula* b) const {
    return a->id < b->id;
  }
};

/// Owns every Formula node of one property; hands out canonical pointers.
class FormulaFactory {
 public:
  FormulaFactory() {
    true_ = fresh(Op::True, 0, nullptr, nullptr);
    false_ = fresh(Op::False, 0, nullptr, nullptr);
  }

  [[nodiscard]] const Formula* top() const { return true_; }
  [[nodiscard]] const Formula* bottom() const { return false_; }

  [[nodiscard]] const Formula* atom(std::uint32_t index) {
    return intern(Op::AtomRef, index, nullptr, nullptr);
  }
  [[nodiscard]] const Formula* negate(const Formula* a) {
    if (a->op == Op::True) return false_;
    if (a->op == Op::False) return true_;
    if (a->op == Op::Not) return a->lhs;
    return intern(Op::Not, 0, a, nullptr);
  }
  [[nodiscard]] const Formula* conj(const Formula* a, const Formula* b) {
    if (a->op == Op::False || b->op == Op::False) return false_;
    if (a->op == Op::True) return b;
    if (b->op == Op::True) return a;
    if (a == b) return a;
    return intern(Op::And, 0, a, b);
  }
  [[nodiscard]] const Formula* disj(const Formula* a, const Formula* b) {
    if (a->op == Op::True || b->op == Op::True) return true_;
    if (a->op == Op::False) return b;
    if (b->op == Op::False) return a;
    if (a == b) return a;
    return intern(Op::Or, 0, a, b);
  }
  [[nodiscard]] const Formula* next(const Formula* a) {
    return intern(Op::Next, 0, a, nullptr);
  }
  [[nodiscard]] const Formula* until(const Formula* a, const Formula* b) {
    if (b->op == Op::True || b->op == Op::False) return b;  // a U b ≡ b here
    return intern(Op::Until, 0, a, b);
  }
  [[nodiscard]] const Formula* release(const Formula* a, const Formula* b) {
    if (b->op == Op::True || b->op == Op::False) return b;  // a R b ≡ b here
    return intern(Op::Release, 0, a, b);
  }
  [[nodiscard]] const Formula* finally_(const Formula* a) {
    return until(true_, a);
  }
  [[nodiscard]] const Formula* globally(const Formula* a) {
    return release(false_, a);
  }
  [[nodiscard]] const Formula* implies(const Formula* a, const Formula* b) {
    return disj(negate(a), b);
  }

  /// Rewrite to negation normal form; with `negated` the result is the NNF
  /// of ¬f. Uses the duals And/Or, Until/Release, and X self-duality.
  [[nodiscard]] const Formula* to_nnf(const Formula* f, bool negated = false) {
    switch (f->op) {
      case Op::True: return negated ? false_ : true_;
      case Op::False: return negated ? true_ : false_;
      case Op::AtomRef: return negated ? negate(f) : f;
      case Op::Not: return to_nnf(f->lhs, !negated);
      case Op::And: {
        auto* l = to_nnf(f->lhs, negated);
        auto* r = to_nnf(f->rhs, negated);
        return negated ? disj(l, r) : conj(l, r);
      }
      case Op::Or: {
        auto* l = to_nnf(f->lhs, negated);
        auto* r = to_nnf(f->rhs, negated);
        return negated ? conj(l, r) : disj(l, r);
      }
      case Op::Next: return next(to_nnf(f->lhs, negated));
      case Op::Until: {
        auto* l = to_nnf(f->lhs, negated);
        auto* r = to_nnf(f->rhs, negated);
        return negated ? release(l, r) : until(l, r);
      }
      case Op::Release: {
        auto* l = to_nnf(f->lhs, negated);
        auto* r = to_nnf(f->rhs, negated);
        return negated ? until(l, r) : release(l, r);
      }
    }
    CCREF_ASSERT_MSG(false, "bad Op");
    return true_;
  }

  /// Render back to surface syntax (tests, error messages). Recognizes the
  /// F/G sugar it desugared.
  [[nodiscard]] std::string to_string(const Formula* f,
                                      const std::vector<Atom>& atoms) const;

 private:
  struct Key {
    Op op;
    std::uint32_t atom;
    const Formula* lhs;
    const Formula* rhs;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const {
      std::size_t h = static_cast<std::size_t>(k.op) * 0x9e3779b97f4a7c15ull;
      h ^= k.atom + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      h ^= reinterpret_cast<std::size_t>(k.lhs) + (h << 6) + (h >> 2);
      h ^= reinterpret_cast<std::size_t>(k.rhs) + (h << 6) + (h >> 2);
      return h;
    }
  };

  const Formula* fresh(Op op, std::uint32_t atom, const Formula* lhs,
                       const Formula* rhs) {
    nodes_.push_back(Formula{op, static_cast<std::uint32_t>(nodes_.size()),
                             atom, lhs, rhs});
    return &nodes_.back();
  }

  const Formula* intern(Op op, std::uint32_t atom, const Formula* lhs,
                        const Formula* rhs) {
    Key key{op, atom, lhs, rhs};
    auto it = interned_.find(key);
    if (it != interned_.end()) return it->second;
    const Formula* f = fresh(op, atom, lhs, rhs);
    interned_.emplace(key, f);
    return f;
  }

  std::deque<Formula> nodes_;  // deque: pointers stay valid across growth
  std::unordered_map<Key, const Formula*, KeyHash> interned_;
  const Formula* true_;
  const Formula* false_;
};

}  // namespace ccref::ltl
