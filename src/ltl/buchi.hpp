// LTL -> generalized Büchi automaton, via the on-the-fly tableau of
// Gerth-Peled-Vardi-Wolper (GPVW, PSTV'95) — the construction inside the
// paper's own tool, SPIN.
//
// The liveness checker negates the property, translates ¬φ here, and hunts
// for a fair accepting lasso in the product (verify/liveness.hpp). The
// automaton stays *generalized* (one acceptance set per Until subformula):
// the SCC-based emptiness check handles multiple sets natively, and the
// weak-fairness constraints are folded in as further "sets" at product
// level, so degeneralizing would only blow up the state count.
//
// Automaton shape: state-labeled over AP valuations. State 0 is a pseudo
// initial state with no obligations; a run s0 a1 s1 a2 s2 ... is accepted
// iff every step i>=1 satisfies pos/neg literal masks of state s_i on
// letter a_i and each acceptance set is visited infinitely often. Letters
// are bitmask valuations of at most 64 atoms — plenty for the G F / F G /
// G(p -> F q) fragment the paper's properties need.
#pragma once

#include <cstdint>
#include <vector>

#include "ltl/formula.hpp"

namespace ccref::ltl {

struct Buchi {
  std::uint32_t num_atoms = 0;
  std::uint32_t num_acc = 0;  // generalized acceptance sets (<= 32)

  // Per automaton state (index 0 = initial pseudo-state):
  std::vector<std::uint64_t> pos;  // atoms that must hold on the letter
  std::vector<std::uint64_t> neg;  // atoms that must not hold
  std::vector<std::uint32_t> acc;  // acceptance-set membership bitmask
  std::vector<std::vector<std::uint32_t>> succ;  // forward edges

  [[nodiscard]] std::size_t size() const { return pos.size(); }
  [[nodiscard]] std::uint32_t all_acc_mask() const {
    return num_acc == 32 ? 0xffffffffu : (1u << num_acc) - 1u;
  }
  /// Does the letter `valuation` satisfy state q's literal obligations?
  [[nodiscard]] bool admits(std::uint32_t q, std::uint64_t valuation) const {
    return (valuation & pos[q]) == pos[q] && (valuation & neg[q]) == 0;
  }
};

/// Translate an NNF formula (negation only over atoms; True/False/And/Or/
/// X/U/R otherwise) into a generalized Büchi automaton. `num_atoms` is the
/// size of the parse's atom table (must be <= 64).
[[nodiscard]] Buchi translate(const Formula* nnf, std::size_t num_atoms);

}  // namespace ccref::ltl
