// DSM workload simulation: runs the refined migratory and invalidate
// protocols on synthetic CPU workloads and reports the message-economy and
// latency statistics a DSM architect would look at (the paper's quality
// metric, §1).
//
// Two engines share the flag surface:
//   step  random-scheduler functional simulator (sim::Simulator) — latency
//         is in scheduler steps, good for message economy and fairness
//   des   discrete-event performance simulator (sim::des_simulate) — latency
//         is in cycles under --cost-model, with optional --write-buffer,
//         parallel --lanes, and trace-file workloads (--trace)
//
//   ./dsm_simulation --remotes=8 --cycles=100 --write-fraction=0.3
//   ./dsm_simulation --engine=des --remotes=64 --lanes=4 --cost-model=dsm
//   ./dsm_simulation --engine=des --trace=examples/traces/sharing.trace --json
#include <cstdio>
#include <iostream>
#include <set>
#include <string>
#include <vector>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/des.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/json.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

namespace {

/// Rows printed as a JSON array on stdout when --json is set; every row
/// carries the common (protocol, n, seed, engine) identity fields first so
/// outputs from both engines stay joinable.
struct JsonRows {
  bool enabled = false;
  std::vector<std::string> rows;

  JsonObject common(const char* protocol, int n, std::uint64_t seed,
                    const char* engine) const {
    JsonObject o;
    o.field("protocol", protocol)
        .field("n", n)
        .field("seed", seed)
        .field("engine", engine);
    return o;
  }
  void push(const JsonObject& o) { rows.push_back(o.str()); }
  void print() const {
    std::printf("[\n");
    for (std::size_t i = 0; i < rows.size(); ++i)
      std::printf("  %s%s\n", rows[i].c_str(),
                  i + 1 < rows.size() ? "," : "");
    std::printf("]\n");
  }
};

void report_step(Table& table, JsonRows& json, const char* name, int n,
                 std::uint64_t seed, const sim::SimStats& stats) {
  if (json.enabled) {
    auto o = json.common(name, n, seed, "step");
    o.field("finished", stats.finished)
        .field("ops", stats.ops_total)
        .field("messages", stats.messages())
        .field("msgs_per_op", stats.msgs_per_op())
        .field("nacks", stats.nack)
        .field("steps", stats.steps)
        .field("fairness", stats.fairness_index());
    if (!stats.finished) o.field("stall", stats.stall.to_string());
    json.push(o);
    return;
  }
  if (!stats.finished) {
    std::fprintf(stderr, "%s stalled: %s\n", name,
                 stats.stall.to_string().c_str());
    return;
  }
  std::uint64_t lat_total = 0, lat_max = 0;
  for (const auto& r : stats.remotes) {
    lat_total += r.latency_total;
    lat_max = std::max(lat_max, r.latency_max);
  }
  table.row({name,
             strf("%llu", static_cast<unsigned long long>(stats.ops_total)),
             strf("%llu", static_cast<unsigned long long>(stats.messages())),
             strf("%.2f", stats.msgs_per_op()),
             strf("%llu", static_cast<unsigned long long>(stats.nack)),
             strf("%.1f", stats.ops_total
                              ? static_cast<double>(lat_total) /
                                    static_cast<double>(stats.ops_total)
                              : 0.0),
             strf("%llu", static_cast<unsigned long long>(lat_max)),
             strf("%.3f", stats.fairness_index())});
}

void report_des(Table& table, JsonRows& json, const char* name, int n,
                std::uint64_t seed, const sim::DesStats& stats) {
  if (json.enabled) {
    auto o = json.common(name, n, seed, "des");
    o.field("finished", stats.finished)
        .field("ops", stats.ops_total)
        .field("messages", stats.messages())
        .field("msgs_per_op", stats.msgs_per_op())
        .field("nacks", stats.nack)
        .field("events", stats.events)
        .field("cycles", stats.cycles)
        .field("lat_p50", stats.latency.percentile(0.5))
        .field("lat_p99", stats.latency.percentile(0.99))
        .field("memory_accesses", stats.memory_accesses)
        .field("c2c_transfers", stats.c2c_transfers)
        .field("write_backs", stats.write_backs)
        .field("home_occupancy", stats.home_occupancy())
        .field("wbuf_hits", stats.wbuf_hits)
        .field("fairness", stats.fairness_index());
    if (!stats.finished) o.field("stall", stats.stall.to_string());
    json.push(o);
    return;
  }
  if (!stats.finished) {
    std::fprintf(stderr, "%s stalled: %s\n", name,
                 stats.stall.to_string().c_str());
    return;
  }
  table.row(
      {name,
       strf("%llu", static_cast<unsigned long long>(stats.ops_total)),
       strf("%llu", static_cast<unsigned long long>(stats.messages())),
       strf("%.2f", stats.msgs_per_op()),
       strf("%llu", static_cast<unsigned long long>(stats.nack)),
       strf("%llu",
            static_cast<unsigned long long>(stats.latency.percentile(0.5))),
       strf("%llu",
            static_cast<unsigned long long>(stats.latency.percentile(0.99))),
       strf("%.3f", stats.fairness_index())});
}

/// A trace can only drive protocols that map all its mnemonics (a lock
/// trace's acq/rel don't exist in the invalidate protocol, say).
bool trace_fits(const ir::Protocol& p, const sim::Trace& trace) {
  auto map = sim::OpMap::for_protocol(p);
  if (!map) return false;
  std::set<std::string> ops;
  for (const auto& r : trace.records) ops.insert(r.op);
  for (const auto& op : ops)
    if (!map->find(op)) return false;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int n = static_cast<int>(
      cli.uint_flag("remotes", 8, 1, 1u << 20, "number of remotes"));
  int cycles = static_cast<int>(
      cli.uint_flag("cycles", 100, 1, 1u << 20, "ops per remote"));
  double write_frac = cli.double_flag("write-fraction", 0.3,
                                      "invalidate write-miss ratio");
  std::uint64_t seed = cli.uint_flag("seed", 1, 0, ~0ull, "scheduler seed");
  int k = static_cast<int>(
      cli.uint_flag("home-buffer", 2, 2, 1024, "home buffer capacity k"));
  std::uint64_t max_steps = cli.uint_flag(
      "max-steps", 50'000'000, 1, ~0ull,
      "step/event budget before a run is declared stalled");
  std::string engine =
      cli.str_flag("engine", "step", "simulation engine: step | des");
  bool json = cli.bool_flag("json", false, "machine-readable JSON on stdout");
  std::string trace_path = cli.str_flag(
      "trace", "", "replay a trace file instead of synthetic workloads (des)");
  std::string cost_name = cli.str_flag(
      "cost-model", "avalanche",
      "cycle costs: avalanche | uniform | dsm (des)");
  bool write_buffer = cli.bool_flag(
      "write-buffer", false, "absorb stores into a remote write buffer (des)");
  int lanes = static_cast<int>(
      cli.uint_flag("lanes", 1, 1, 64, "parallel independent-home lanes (des)"));
  std::uint64_t addresses = cli.uint_flag(
      "addresses", 4, 1, ~0ull, "synthetic address-space size (des)");
  cli.finish();

  if (engine != "step" && engine != "des") {
    std::fprintf(stderr, "--engine must be step or des\n");
    return 2;
  }

  refine::Options opts;
  opts.home_buffer_capacity = k;
  opts.channel_capacity = 16;

  JsonRows rows;
  rows.enabled = json;
  const bool des = engine == "des";
  Table table({"Protocol", "Ops", "Messages", "msgs/op", "nacks",
               des ? "p50 latency" : "avg latency",
               des ? "p99 latency" : "max latency", "Jain fairness"});

  sim::DesOptions dopts;
  sim::Trace trace;
  if (des) {
    auto cost = sim::CostModel::preset(cost_name);
    if (!cost) {
      std::fprintf(stderr, "unknown --cost-model '%s'\n", cost_name.c_str());
      return 2;
    }
    dopts.cost = *cost;
    dopts.write_buffer = write_buffer;
    dopts.lanes = lanes;
    dopts.max_events = max_steps;
    if (!trace_path.empty()) {
      std::string err;
      if (!sim::load_trace(trace_path, trace, err)) {
        std::fprintf(stderr, "%s: %s\n", trace_path.c_str(), err.c_str());
        return 2;
      }
    }
  }

  struct Proto {
    const char* name;
    ir::Protocol p;
  };
  std::vector<Proto> protos;
  protos.push_back({"migratory", protocols::make_migratory()});
  protos.push_back({"invalidate", protocols::make_invalidate()});

  for (auto& [name, p] : protos) {
    auto rp = refine::refine(p, opts);
    if (!des) {
      runtime::AsyncSystem sys(rp, n);
      auto w = std::string(name) == "migratory"
                   ? sim::migratory_workload(p, n, cycles)
                   : sim::invalidate_workload(p, n, cycles, write_frac, seed);
      sim::SimOptions sopts;
      sopts.seed = seed;
      sopts.max_steps = max_steps;
      report_step(table, rows, name, n, seed, sim::simulate(sys, w, sopts));
      continue;
    }
    if (!trace_path.empty()) {
      if (!trace_fits(p, trace)) {
        std::fprintf(stderr, "%s: trace has mnemonics this protocol "
                             "does not map; skipped\n",
                     name);
        continue;
      }
      sim::TraceSource src(p, trace);
      report_des(table, rows, name, static_cast<int>(src.num_nodes()), seed,
                 sim::des_simulate(rp, src, dopts));
      continue;
    }
    sim::SyntheticConfig cfg;
    cfg.kind = name;
    cfg.nodes = static_cast<std::uint32_t>(n);
    cfg.ops_per_node = static_cast<std::uint32_t>(cycles);
    cfg.addresses = addresses;
    cfg.write_fraction = write_frac;
    cfg.seed = seed;
    sim::SyntheticSource src(p, cfg);
    report_des(table, rows, name, n, seed, sim::des_simulate(rp, src, dopts));
  }

  if (json) {
    rows.print();
    return 0;
  }
  if (des)
    std::printf("DSM simulation (discrete-event): %d remotes, %d ops each, "
                "k=%d, seed %llu, cost=%s, lanes=%d%s\n\n",
                n, cycles, k, static_cast<unsigned long long>(seed),
                cost_name.c_str(), lanes,
                write_buffer ? ", write buffer" : "");
  else
    std::printf("DSM simulation: %d remotes, %d ops each, k=%d, seed %llu\n\n",
                n, cycles, k, static_cast<unsigned long long>(seed));
  table.print(std::cout);
  if (des)
    std::printf(
        "\nLatency is in simulated cycles under the %s cost model; msgs/op "
        "counts\nreq+ack+nack+repl wire messages per completed operation.\n",
        cost_name.c_str());
  else
    std::printf(
        "\nLatency is in scheduler steps (one asynchronous transition each); "
        "msgs/op counts\nreq+ack+nack+repl wire messages per completed "
        "acquire/release operation.\n");
  return 0;
}
