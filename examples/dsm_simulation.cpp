// DSM workload simulation: runs the refined migratory and invalidate
// protocols on synthetic CPU workloads and reports the message-economy and
// latency statistics a DSM architect would look at (the paper's quality
// metric, §1).
//
//   ./dsm_simulation --remotes=8 --cycles=100 --write-fraction=0.3
#include <cstdio>
#include <iostream>

#include "protocols/invalidate.hpp"
#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"

using namespace ccref;

namespace {

void report(Table& table, const char* name, const sim::SimStats& stats) {
  if (!stats.finished) {
    std::fprintf(stderr, "%s stalled: %s\n", name, stats.stall.c_str());
    return;
  }
  std::uint64_t lat_total = 0, lat_max = 0;
  for (const auto& r : stats.remotes) {
    lat_total += r.latency_total;
    lat_max = std::max(lat_max, r.latency_max);
  }
  table.row({name,
             strf("%llu", static_cast<unsigned long long>(stats.ops_total)),
             strf("%llu", static_cast<unsigned long long>(stats.messages())),
             strf("%.2f", stats.msgs_per_op()),
             strf("%llu", static_cast<unsigned long long>(stats.nack)),
             strf("%.1f", stats.ops_total
                              ? static_cast<double>(lat_total) /
                                    static_cast<double>(stats.ops_total)
                              : 0.0),
             strf("%llu", static_cast<unsigned long long>(lat_max)),
             strf("%.3f", stats.fairness_index())});
}

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int n = static_cast<int>(
      cli.uint_flag("remotes", 8, 1, 64, "number of remotes"));
  int cycles = static_cast<int>(
      cli.uint_flag("cycles", 100, 1, 1u << 20, "ops per remote"));
  double write_frac = cli.double_flag("write-fraction", 0.3,
                                      "invalidate write-miss ratio");
  std::uint64_t seed = cli.uint_flag("seed", 1, 0, ~0ull, "scheduler seed");
  int k = static_cast<int>(
      cli.uint_flag("home-buffer", 2, 2, 1024, "home buffer capacity k"));
  cli.finish();

  refine::Options opts;
  opts.home_buffer_capacity = k;
  opts.channel_capacity = 16;

  Table table({"Protocol", "Ops", "Messages", "msgs/op", "nacks",
               "avg latency", "max latency", "Jain fairness"});

  {
    auto p = protocols::make_migratory();
    auto rp = refine::refine(p, opts);
    runtime::AsyncSystem sys(rp, n);
    auto w = sim::migratory_workload(p, n, cycles);
    sim::SimOptions sopts;
    sopts.seed = seed;
    sopts.max_steps = 50'000'000;
    report(table, "migratory", sim::simulate(sys, w, sopts));
  }
  {
    auto p = protocols::make_invalidate();
    auto rp = refine::refine(p, opts);
    runtime::AsyncSystem sys(rp, n);
    auto w = sim::invalidate_workload(p, n, cycles, write_frac, seed);
    sim::SimOptions sopts;
    sopts.seed = seed;
    sopts.max_steps = 50'000'000;
    report(table, "invalidate", sim::simulate(sys, w, sopts));
  }

  std::printf("DSM simulation: %d remotes, %d ops each, k=%d, seed %llu\n\n",
              n, cycles, k, static_cast<unsigned long long>(seed));
  table.print(std::cout);
  std::printf(
      "\nLatency is in scheduler steps (one asynchronous transition each); "
      "msgs/op counts\nreq+ack+nack+repl wire messages per completed "
      "acquire/release operation.\n");
  return 0;
}
