// Regenerates the paper's protocol diagrams (Figures 2-5) as Graphviz DOT:
//
//   fig2_home_rendezvous.dot    — migratory home node (Fig. 2)
//   fig3_remote_rendezvous.dot  — migratory remote node (Fig. 3)
//   fig4_home_refined.dot       — refined home node (Fig. 4)
//   fig5_remote_refined.dot     — refined remote node (Fig. 5)
//   fig5_remote_hand.dot        — the hand design (dotted LR, no ack)
//
//   ./export_figures [--out=figures]
//   dot -Tpng figures/fig2_home_rendezvous.dot -o fig2.png
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "protocols/migratory.hpp"
#include "refine/refined.hpp"
#include "support/cli.hpp"
#include "viz/dot.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  std::string out_dir = cli.str_flag("out", "figures", "output directory");
  cli.finish();

  std::filesystem::create_directories(out_dir);
  auto write = [&](const std::string& name, const std::string& dot) {
    std::string path = out_dir + "/" + name;
    std::ofstream(path) << dot;
    std::printf("wrote %s\n", path.c_str());
  };

  auto p = protocols::make_migratory();
  auto refined = refine::refine(p);
  refine::Options hand_opts;
  hand_opts.elide_ack = {"LR"};
  auto hand = refine::refine(p, hand_opts);

  write("fig2_home_rendezvous.dot", viz::rendezvous_dot(p, p.home));
  write("fig3_remote_rendezvous.dot", viz::rendezvous_dot(p, p.remote));
  write("fig4_home_refined.dot", viz::refined_dot(refined, p.home));
  write("fig5_remote_refined.dot", viz::refined_dot(refined, p.remote));
  write("fig5_remote_hand.dot", viz::refined_dot(hand, p.remote));

  std::printf("\nrender with: dot -Tpng %s/fig2_home_rendezvous.dot -o "
              "fig2.png\n",
              out_dir.c_str());
  return 0;
}
