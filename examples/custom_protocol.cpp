// Custom protocols from text: parse a .csp file, validate it, model-check
// the rendezvous view, refine it, and model-check the asynchronous result
// with the §4 simulation relation.
//
//   ./custom_protocol path/to/protocol.csp [--remotes=3]
//
// Run without arguments to use the bundled ticket-dispenser example
// (examples/protocols/ticket.csp is compiled in below so the binary works
// from any directory).
#include <cstdio>

#include "dsl/parser.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "ltl/check.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "support/cli.hpp"
#include "support/storage_cli.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"
#include "verify/progress.hpp"

using namespace ccref;

namespace {

constexpr const char* kBundledTicket = R"(
protocol ticket;
message take;
message ticket(int);

home h {
  var j: node;
  var next: int mod 4;
  state IDLE initial {
    r(any j)?take -> GIVE
  }
  state GIVE {
    r(j)!ticket(next) { next := next + 1; j := none } -> IDLE
  }
}

remote r {
  var mine: int mod 4;
  state ASK initial {
    h!take -> WAIT
  }
  state WAIT {
    h?ticket(mine) -> DONE
  }
  internal DONE {
    tau again -> ASK
  }
}
)";

}  // namespace

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int n = static_cast<int>(
      cli.uint_flag("remotes", 2, 1, 64, "number of remotes"));
  StorageFlags storage = storage_flags(cli, "64M");
  auto jobs = static_cast<unsigned>(cli.uint_flag(
      "jobs", 1, 1, 1024,
      "verification worker threads (1 = sequential engine)"));
  auto shards = static_cast<unsigned>(cli.uint_flag(
      "shards", 0, 0, 256,
      "visited-set shards for the parallel engine (0: match jobs)"));
  std::string sym_arg = cli.str_flag(
      "symmetry", "off", "symmetry reduction: off | canonical");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample");
  bool bitstate = cli.bool_flag(
      "bitstate", false,
      "approximate supertrace search (8MB bit array; skips the simulation "
      "and progress checks)");
  std::string ltl_text = cli.str_flag(
      "ltl", "", "LTL property to check on the asynchronous system, "
                 "e.g. \"G F completion\"");
  std::string fair_arg = cli.str_flag(
      "fairness", "weak", "fairness for --ltl: none | weak | strong");
  std::string compress_arg = cli.str_flag(
      "compress", "off", "state-vector compression: off | collapse");
  cli.finish();
  auto symmetry = verify::parse_symmetry(sym_arg);
  if (!symmetry) {
    std::fprintf(stderr, "bad --symmetry value '%s' (off | canonical)\n",
                 sym_arg.c_str());
    return 2;
  }
  auto compress = verify::parse_compression(compress_arg);
  if (!compress) {
    std::fprintf(stderr, "bad --compress value '%s' (off | collapse)\n",
                 compress_arg.c_str());
    return 2;
  }
  auto fairness = verify::parse_fairness(fair_arg);
  if (!fairness) {
    std::fprintf(stderr, "bad --fairness value '%s' (none | weak | strong)\n",
                 fair_arg.c_str());
    return 2;
  }
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }

  dsl::ParseResult parsed =
      cli.positional().empty() ? dsl::parse(kBundledTicket)
                               : dsl::parse_file(cli.positional()[0]);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse failed:\n%s\n",
                 parsed.error_text().c_str());
    return 1;
  }
  const ir::Protocol& p = *parsed.protocol;
  std::printf("parsed protocol '%s':\n\n%s\n", p.name.c_str(),
              ir::to_string(p).c_str());

  auto diags = ir::validate(p);
  if (ir::has_errors(diags)) {
    std::fprintf(stderr, "validation failed:\n%s",
                 ir::to_string(diags).c_str());
    return 1;
  }
  if (!diags.empty())
    std::printf("warnings:\n%s\n", ir::to_string(diags).c_str());

  sem::RendezvousSystem rendezvous(p, n);
  if (bitstate) {
    auto rb = verify::explore_bitstate(rendezvous, 8u << 20, 100000, {},
                                       /*max_states=*/0, *symmetry);
    std::printf("rendezvous (%d remotes, bitstate): %zu+ states (%.3fs)\n",
                n, rb.states, rb.seconds);
    auto refined_bit = refine::refine(p);
    auto ab = verify::explore_bitstate(
        runtime::AsyncSystem(refined_bit, n), 8u << 20, 100000, {},
        /*max_states=*/0, *symmetry);
    std::printf("asynchronous (%d remotes, bitstate): %zu+ states (%.3fs)\n",
                n, ab.states, ab.seconds);
    std::printf("\nbitstate coverage only — rerun without --bitstate for the "
                "exact search\nwith the Equation 1 simulation and progress "
                "checks.\n");
    return 0;
  }
  verify::CheckOptions<sem::RendezvousSystem> rv_opts;
  rv_opts.memory_limit = storage.memory_limit;
  rv_opts.hash_compact = storage.hash_compact;
  rv_opts.spill = storage.spill;
  rv_opts.external = storage.external;
  rv_opts.symmetry = *symmetry;
  rv_opts.compress = *compress;
  auto rv = jobs <= 1 ? verify::explore(rendezvous, rv_opts)
                      : verify::par_explore(rendezvous, rv_opts, jobs, shards);
  std::printf("rendezvous (%d remotes): %s, %zu states (%.3fs)\n", n,
              verify::to_string(rv.status), rv.states, rv.seconds);
  if (rv.status != verify::Status::Ok) {
    std::printf("  %s\n", rv.violation.c_str());
    for (const auto& step : rv.trace) std::printf("  %s\n", step.c_str());
    return 1;
  }

  auto refined = refine::refine(p);
  std::printf("refinement:\n");
  for (ir::MsgId m = 0; m < p.messages.size(); ++m)
    std::printf("  %-10s %s\n", p.messages[m].name.c_str(),
                refine::to_string(refined.cls(m)));

  runtime::AsyncSystem async(refined, n);
  // Validate user-supplied LTL up front so a typo fails before the (possibly
  // long) exploration, not after it.
  if (!ltl_text.empty()) {
    auto compiled = ltl::compile(async, ltl_text);
    if (!compiled.error.empty()) {
      std::fprintf(stderr, "bad --ltl property: %s\n",
                   compiled.error.c_str());
      return 2;
    }
  }
  verify::CheckOptions<runtime::AsyncSystem> opts;
  opts.memory_limit = storage.memory_limit;
  opts.hash_compact = storage.hash_compact;
  opts.spill = storage.spill;
  opts.external = storage.external;
  opts.symmetry = *symmetry;
  // The Equation-1 edge check must see every edge, so the engine downgrades
  // --por ample here and says so in the note.
  opts.por = *por;
  opts.compress = *compress;
  // The Equation-1 simulation proof only exists for star protocols: no
  // single rendezvous prefix corresponds to a mid-flight bus transaction
  // (DESIGN.md §4.9). Bus protocols get invariant/progress checks on both
  // levels instead.
  if (p.topology == ir::Topology::Star)
    opts.edge_check = refine::make_simulation_checker(async, rendezvous);
  else
    std::printf("topology bus: skipping the Equation-1 edge check "
                "(star-only; both levels are invariant-checked)\n");
  auto as = jobs <= 1 ? verify::explore(async, opts)
                      : verify::par_explore(async, opts, jobs, shards);
  std::printf("asynchronous (%d remotes): %s, %zu states (%.3fs)\n", n,
              verify::to_string(as.status), as.states, as.seconds);
  if (!as.note.empty()) std::printf("  note: %s\n", as.note.c_str());
  if (as.status != verify::Status::Ok) {
    std::printf("  %s\n", as.violation.c_str());
    for (const auto& step : as.trace) std::printf("  %s\n", step.c_str());
    return 1;
  }

  verify::ProgressOptions prog_opts;
  prog_opts.por = *por;
  prog_opts.compress = *compress;
  auto prog = verify::check_progress(async, prog_opts);
  std::printf("progress: %zu/%zu states can always complete another "
              "rendezvous%s\n",
              prog.states - prog.doomed, prog.states,
              prog.doomed ? "  <-- LIVELOCK" : "");

  if (!ltl_text.empty()) {
    verify::LivenessOptions lopts;
    lopts.fairness = *fairness;
    lopts.symmetry = *symmetry;
    lopts.por = *por;
    lopts.compress = *compress;
    auto live = ltl::check_ltl(async, ltl_text, lopts);
    std::printf("ltl %s under %s fairness: %s, %zu product states (%.3fs)\n",
                ltl_text.c_str(), verify::to_string(*fairness),
                verify::to_string(live.status), live.states, live.seconds);
    if (!live.note.empty()) std::printf("  note: %s\n", live.note.c_str());
    if (live.status != verify::Status::Ok) {
      std::printf("  %s\n", live.violation.c_str());
      for (const auto& step : live.stem) std::printf("  %s\n", step.c_str());
      for (const auto& step : live.cycle)
        std::printf("  (cycle) %s\n", step.c_str());
      return 1;
    }
  }

  std::printf(p.topology == ir::Topology::Star
                  ? "\nall checks passed — Equation 1 held on every "
                    "transition.\n"
                  : "\nall checks passed — both levels invariant-clean.\n");
  return prog.doomed == 0 ? 0 : 1;
}
