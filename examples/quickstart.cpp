// Quickstart: the full ccref pipeline on a tiny protocol, end to end.
//
//   1. Write a rendezvous protocol with the builder (or the textual DSL).
//   2. Validate it against the paper's §2.4 restrictions.
//   3. Model-check the rendezvous semantics (cheap).
//   4. Refine it into an asynchronous protocol (§3).
//   5. Model-check the asynchronous semantics with the §4 simulation
//      relation — soundness for free.
//
// The protocol: remotes increment a counter held by the home and read the
// new value back (the reply fuses with the request under §3.3).
#include <cstdio>

#include "ir/builder.hpp"
#include "ir/print.hpp"
#include "ir/validate.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "verify/checker.hpp"

using namespace ccref;

int main() {
  // ---- 1. write the protocol -------------------------------------------------
  ir::ProtocolBuilder b("counter");
  ir::MsgId BUMP = b.msg("bump");
  ir::MsgId VAL = b.msg("val", {ir::Type::Int});

  auto& h = b.home();
  ir::VarId j = h.var("j", ir::Type::Node, ir::kNoNode);
  ir::VarId c = h.var("c", ir::Type::Int, 0, 4);
  h.comm("IDLE").initial();
  h.comm("REPLY");
  h.input("IDLE", BUMP)
      .from_any(j)
      .act(ir::st::assign(c, ir::ex::add(ir::ex::var(c), ir::ex::lit(1))))
      .go("REPLY");
  h.output("REPLY", VAL)
      .to(ir::ex::var(j))
      .pay({ir::ex::var(c)})
      .act(ir::st::assign(j, ir::ex::no_node()))
      .go("IDLE");

  auto& r = b.remote();
  ir::VarId seen = r.var("seen", ir::Type::Int, 0, 4);
  r.comm("ASK");  // active: bump whenever the client feels like it
  r.comm("WAIT");
  r.output("ASK", BUMP).go("WAIT");
  r.input("WAIT", VAL).bind({seen}).go("ASK");

  ir::Protocol protocol = b.build();
  std::printf("=== rendezvous protocol ===\n%s\n",
              ir::to_string(protocol).c_str());

  // ---- 2. validate -------------------------------------------------------------
  auto diags = ir::validate(protocol);
  if (ir::has_errors(diags)) {
    std::printf("validation failed:\n%s", ir::to_string(diags).c_str());
    return 1;
  }
  std::printf("validation: ok (the §2.4 star-protocol fragment)\n\n");

  // ---- 3. model-check the rendezvous view ---------------------------------------
  const int n = 3;
  sem::RendezvousSystem rendezvous(protocol, n);
  auto rv = verify::explore(rendezvous);
  std::printf("rendezvous semantics, %d remotes: %s, %zu states, %zu "
              "transitions (%.3fs)\n",
              n, verify::to_string(rv.status), rv.states, rv.transitions,
              rv.seconds);

  // ---- 4. refine -----------------------------------------------------------------
  auto refined = refine::refine(protocol);
  for (ir::MsgId m = 0; m < protocol.messages.size(); ++m)
    std::printf("  message %-5s -> %s\n",
                protocol.messages[m].name.c_str(),
                refine::to_string(refined.cls(m)));
  std::printf("(bump/val fused per §3.3: the reply doubles as the ack)\n\n");

  // ---- 5. model-check the asynchronous protocol + Equation 1 --------------------
  runtime::AsyncSystem async(refined, n);
  verify::CheckOptions<runtime::AsyncSystem> opts;
  opts.edge_check = refine::make_simulation_checker(async, rendezvous);
  auto as = verify::explore(async, opts);
  std::printf("asynchronous semantics, %d remotes: %s, %zu states, %zu "
              "transitions (%.3fs)\n",
              n, verify::to_string(as.status), as.states, as.transitions,
              as.seconds);
  if (as.status != verify::Status::Ok) {
    std::printf("  violation: %s\n", as.violation.c_str());
    return 1;
  }
  std::printf(
      "every asynchronous transition satisfied Equation 1 — the refined "
      "protocol\nimplements the rendezvous one without a separate proof "
      "(%zux state blowup avoided\nat specification time).\n",
      rv.states ? as.states / rv.states : 0);
  return 0;
}
