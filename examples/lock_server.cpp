// Beyond cache coherence: a centralized lock server refined by the same
// procedure (the paper's claim that the rules cover "large classes of DSM
// protocols" — any star-topology client/server rendezvous protocol).
//
// Verifies mutual exclusion at both semantics, confirms the acq/grant fusion
// and forward progress, then simulates a lock convoy and prints per-client
// acquisition counts.
#include <cstdio>
#include <iostream>

#include "ltl/check.hpp"
#include "protocols/lockserver.hpp"
#include "refine/abstraction.hpp"
#include "refine/refined.hpp"
#include "runtime/async_system.hpp"
#include "sem/rendezvous.hpp"
#include "sim/simulator.hpp"
#include "support/cli.hpp"
#include "support/storage_cli.hpp"
#include "support/strings.hpp"
#include "support/table.hpp"
#include "verify/bitstate.hpp"
#include "verify/checker.hpp"
#include "verify/par_checker.hpp"
#include "verify/progress.hpp"

using namespace ccref;

int main(int argc, char** argv) {
  Cli cli(argc, argv);
  int n = static_cast<int>(
      cli.uint_flag("clients", 6, 1, 64, "number of clients"));
  int locks = static_cast<int>(cli.uint_flag(
      "acquisitions", 50, 1, 1u << 20, "lock/unlock pairs per client"));
  StorageFlags storage = storage_flags(cli, "512M");
  auto jobs = static_cast<unsigned>(cli.uint_flag(
      "jobs", 1, 1, 1024,
      "verification worker threads (1 = sequential engine)"));
  auto shards = static_cast<unsigned>(cli.uint_flag(
      "shards", 0, 0, 256,
      "visited-set shards for the parallel engine (0: match jobs)"));
  std::string sym_arg = cli.str_flag(
      "symmetry", "off", "symmetry reduction: off | canonical");
  std::string por_arg = cli.str_flag(
      "por", "off", "partial-order reduction: off | ample");
  bool bitstate = cli.bool_flag(
      "bitstate", false,
      "approximate supertrace verification (8MB bit array; skips the "
      "simulation and progress checks)");
  std::string ltl_text = cli.str_flag(
      "ltl", "", "LTL property to check on the asynchronous system, "
                 "e.g. \"G (requested(0) -> F granted(0))\"");
  std::string fair_arg = cli.str_flag(
      "fairness", "weak", "fairness for --ltl: none | weak | strong");
  std::string compress_arg = cli.str_flag(
      "compress", "off", "state-vector compression: off | collapse");
  cli.finish();
  auto symmetry = verify::parse_symmetry(sym_arg);
  if (!symmetry) {
    std::fprintf(stderr, "bad --symmetry value '%s' (off | canonical)\n",
                 sym_arg.c_str());
    return 2;
  }
  auto compress = verify::parse_compression(compress_arg);
  if (!compress) {
    std::fprintf(stderr, "bad --compress value '%s' (off | collapse)\n",
                 compress_arg.c_str());
    return 2;
  }
  auto fairness = verify::parse_fairness(fair_arg);
  if (!fairness) {
    std::fprintf(stderr, "bad --fairness value '%s' (none | weak | strong)\n",
                 fair_arg.c_str());
    return 2;
  }
  auto por = verify::parse_por(por_arg);
  if (!por) {
    std::fprintf(stderr, "bad --por value '%s' (off | ample)\n",
                 por_arg.c_str());
    return 2;
  }

  auto p = protocols::make_lock_server();

  // ---- verify ------------------------------------------------------------------
  const int check_n = std::min(n, 3);
  sem::RendezvousSystem rendezvous(p, check_n);
  auto refined = refine::refine(p);
  if (bitstate) {
    // Supertrace mode: invariant violations found are real; state counts
    // are lower bounds, and the simulation/progress checks need the exact
    // engine.
    auto rb = verify::explore_bitstate(
        rendezvous, 8u << 20, 100000,
        protocols::lock_server_invariant(p, check_n), /*max_states=*/0,
        *symmetry);
    std::printf("rendezvous mutual exclusion (%d clients, bitstate): %s "
                "(%zu+ states)\n",
                check_n, rb.violation.empty() ? "Ok" : "VIOLATED", rb.states);
    auto ab = verify::explore_bitstate(
        runtime::AsyncSystem(refined, check_n), 8u << 20, 100000,
        protocols::lock_server_async_invariant(p, check_n), /*max_states=*/0,
        *symmetry);
    std::printf("asynchronous mutual exclusion (%d clients, bitstate): %s "
                "(%zu+ states)\n\n",
                check_n, ab.violation.empty() ? "Ok" : "VIOLATED", ab.states);
    if (!rb.violation.empty() || !ab.violation.empty()) return 1;
  } else {
    verify::CheckOptions<sem::RendezvousSystem> rv_opts;
    rv_opts.memory_limit = storage.memory_limit;
    rv_opts.hash_compact = storage.hash_compact;
    rv_opts.spill = storage.spill;
    rv_opts.external = storage.external;
    rv_opts.symmetry = *symmetry;
    rv_opts.compress = *compress;
    rv_opts.invariant = protocols::lock_server_invariant(p, check_n);
    auto rv = jobs <= 1 ? verify::explore(rendezvous, rv_opts)
                        : verify::par_explore(rendezvous, rv_opts, jobs, shards);
    std::printf("rendezvous mutual exclusion (%d clients): %s (%zu states)\n",
                check_n, verify::to_string(rv.status), rv.states);

    runtime::AsyncSystem async(refined, check_n);
    // Validate user-supplied LTL before the exploration so a typo fails fast.
    if (!ltl_text.empty()) {
      auto compiled = ltl::compile(async, ltl_text);
      if (!compiled.error.empty()) {
        std::fprintf(stderr, "bad --ltl property: %s\n",
                     compiled.error.c_str());
        return 2;
      }
    }
    verify::CheckOptions<runtime::AsyncSystem> as_opts;
    as_opts.memory_limit = storage.memory_limit;
    as_opts.hash_compact = storage.hash_compact;
    as_opts.spill = storage.spill;
    as_opts.external = storage.external;
    as_opts.symmetry = *symmetry;
    // Invariant + edge check force the engine to see every state and edge,
    // so --por ample is downgraded here (the note says so); the progress
    // and LTL checks below still honor it.
    as_opts.por = *por;
    as_opts.compress = *compress;
    as_opts.invariant = protocols::lock_server_async_invariant(p, check_n);
    as_opts.edge_check = refine::make_simulation_checker(async, rendezvous);
    auto as = jobs <= 1 ? verify::explore(async, as_opts)
                        : verify::par_explore(async, as_opts, jobs, shards);
    std::printf("asynchronous + Equation 1 (%d clients): %s (%zu states)\n",
                check_n, verify::to_string(as.status), as.states);
    if (!as.note.empty()) std::printf("  note: %s\n", as.note.c_str());
    verify::ProgressOptions prog_opts;
    prog_opts.por = *por;
    prog_opts.compress = *compress;
    auto prog = verify::check_progress(async, prog_opts);
    std::printf("forward progress: %zu doomed states\n", prog.doomed);
    if (rv.status != verify::Status::Ok || as.status != verify::Status::Ok ||
        prog.doomed != 0)
      return 1;

    if (!ltl_text.empty()) {
      verify::LivenessOptions lopts;
      lopts.fairness = *fairness;
      lopts.symmetry = *symmetry;
      lopts.por = *por;
      lopts.compress = *compress;
      auto live = ltl::check_ltl(async, ltl_text, lopts);
      std::printf("ltl %s under %s fairness: %s, %zu product states\n",
                  ltl_text.c_str(), verify::to_string(*fairness),
                  verify::to_string(live.status), live.states);
      if (!live.note.empty()) std::printf("  note: %s\n", live.note.c_str());
      if (live.status != verify::Status::Ok) {
        std::printf("  %s\n", live.violation.c_str());
        for (const auto& step : live.stem)
          std::printf("  %s\n", step.c_str());
        for (const auto& step : live.cycle)
          std::printf("  (cycle) %s\n", step.c_str());
        return 1;
      }
    }
    std::printf("\n");
  }

  // ---- simulate a convoy ---------------------------------------------------------
  refine::Options sim_opts_r;
  sim_opts_r.channel_capacity = 16;
  auto sim_refined = refine::refine(p, sim_opts_r);
  runtime::AsyncSystem sys(sim_refined, n);

  sim::Workload w;
  w.vocabulary = {"acq", "unlock"};  // active sends carry the message name
  w.per_remote.resize(n);
  const ir::StateId goal_cs = p.remote.find_state("CS");
  const ir::StateId goal_i = p.remote.find_state("I");
  for (auto& q : w.per_remote)
    for (int c = 0; c < locks; ++c) {
      q.push_back({"lock", {"acq"}, goal_cs});
      q.push_back({"unlock", {"unlock"}, goal_i});
    }

  sim::SimOptions sopts;
  sopts.seed = 2024;
  sopts.max_steps = 20'000'000;
  auto stats = sim::simulate(sys, w, sopts);
  if (!stats.finished) {
    std::fprintf(stderr, "simulation stalled: %s\n",
                 stats.stall.to_string().c_str());
    return 1;
  }

  Table table({"Client", "Acquisitions", "Avg wait (steps)", "Max wait"});
  for (int i = 0; i < n; ++i) {
    const auto& r = stats.remotes[i];
    table.row({strf("r%d", i),
               strf("%llu",
                    static_cast<unsigned long long>(r.ops_completed / 2)),
               strf("%.1f", r.ops_completed
                                ? static_cast<double>(r.latency_total) /
                                      static_cast<double>(r.ops_completed)
                                : 0.0),
               strf("%llu",
                    static_cast<unsigned long long>(r.latency_max))});
  }
  table.print(std::cout);
  std::printf("\n%llu messages for %llu lock/unlock pairs (%.2f msgs/pair); "
              "%llu nacks\n",
              static_cast<unsigned long long>(stats.messages()),
              static_cast<unsigned long long>(stats.ops_total / 2),
              2.0 * stats.msgs_per_op(),
              static_cast<unsigned long long>(stats.nack));
  return 0;
}
